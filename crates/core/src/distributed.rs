//! Distributed deployment of Cologne instances over the simulated network.
//!
//! In the paper's distributed mode (Fig. 1), one Cologne instance runs per
//! node and instances exchange system state and optimization output through
//! the declarative networking engine over ns-3. [`DistributedCologne`] wires
//! one [`CologneInstance`] per topology node to the discrete-event simulator
//! of `cologne-net`: located rule heads and solver outputs addressed to other
//! nodes become simulated messages with latency, bandwidth and per-node
//! traffic accounting (the substrate for Fig. 4 and Fig. 5).
//!
//! # Delivery guarantees
//!
//! By default tuples ride the simulated network bare, exactly once and in
//! order — the network is perfect, so nothing more is needed and every
//! pre-existing run stays byte-identical. Installing a fault plan
//! ([`DistributedCologne::set_fault_plan`]) makes the network hostile
//! (loss, duplication, reorder, partitions, crashes — see `cologne_net::fault`)
//! and switches shipping to an **at-least-once delivery layer**:
//!
//! * every tuple becomes a sequenced data packet on its directed channel
//!   `(from, to)`;
//! * the receiver acks every packet of the current channel epoch (including
//!   duplicates — an ack can be lost too), delivers in sequence order,
//!   buffers out-of-order arrivals and drops duplicates;
//! * the sender keeps unacked packets and retransmits them on a per-node
//!   timer with capped exponential backoff until acked.
//!
//! # Crash and rejoin
//!
//! A crash ([`cologne_net::Event::NodeDown`], scheduled by the fault plan)
//! drops the node's in-flight state: its delivery channels disappear and the
//! instance forgets everything it had ingested from peers plus all solver
//! caches ([`CologneInstance::crash_reset`]) — only its local base facts
//! survive, as a process restart reading local configuration would. On
//! rejoin the channel epochs touching the node are bumped (stale packets and
//! acks from before the crash are discarded by epoch, not misinterpreted)
//! and the node is **re-synced from its neighbors**: every peer re-ships its
//! current assertion set for the rejoined node — and the rejoined node
//! re-ships its own last assertions — as fresh inserts through the existing
//! schema-validated ingest path. Re-deliveries are set-semantics no-ops, so
//! the resync is idempotent and converges to the pre-crash fixpoint once the
//! node has re-derived its rules.
//!
//! # Determinism contract
//!
//! All retransmit timers, sequence numbers and epochs are functions of the
//! (deterministic) event schedule, and all fault draws come from seeded
//! per-link streams, so a seeded hostile run is byte-identical across
//! reruns: same [`NodeTraffic`], same [`DeliveryStats`], same tables.

use std::collections::{BTreeMap, BTreeSet};

use cologne_datalog::{NodeId, RemoteTuple, Tuple};
use cologne_net::{Event, FaultPlan, LinkProps, NodeTraffic, SimTime, Simulator, Topology};

use crate::error::CologneError;
use crate::instance::{CologneInstance, SolveReport};

/// Timer tag reserved for the delivery layer's retransmit timers. User
/// timers must use tags below this value.
pub const RETX_TIMER_TAG: u64 = u64::MAX;

/// Wire overhead of a data packet (epoch + sequence number) in bytes.
const DATA_HEADER_BYTES: usize = 12;
/// Wire size of an ack packet in bytes.
const ACK_BYTES: usize = 16;
/// Initial retransmit timeout in microseconds (an order of magnitude above
/// the default link RTT).
const RTO_BASE_US: u64 = 25_000;
/// Retransmit backoff cap in microseconds.
const RTO_MAX_US: u64 = 400_000;

/// What a timer handler asks the driver to do next.
#[derive(Debug, Default)]
pub struct TimerOutcome {
    /// Tuples to ship to other nodes (in addition to whatever the instance's
    /// own rule evaluation produced).
    pub outgoing: Vec<RemoteTuple>,
    /// Re-arm the timer after this delay with the given tag.
    pub reschedule: Option<(SimTime, u64)>,
}

/// Counters of the at-least-once delivery layer, all zero until
/// [`DistributedCologne::enable_reliable_delivery`] (or a fault plan)
/// switches it on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DeliveryStats {
    /// Sequenced data packets shipped (first transmissions only).
    pub data_packets_sent: u64,
    /// Retransmissions of unacked packets.
    pub retransmits: u64,
    /// Acks sent by receivers.
    pub acks_sent: u64,
    /// Received packets dropped as already-delivered duplicates.
    pub duplicates_dropped: u64,
    /// Received packets dropped because they carried a pre-crash epoch.
    pub stale_epoch_dropped: u64,
    /// Received packets buffered because they arrived ahead of sequence.
    pub out_of_order_buffered: u64,
    /// Node crashes processed.
    pub crashes: u64,
    /// Node rejoins processed.
    pub rejoins: u64,
    /// Tuples re-shipped to (and by) rejoining nodes during resync.
    pub resync_tuples: u64,
}

/// One entry of [`DistributedCologne::take_crash_log`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashEvent {
    /// The node that crashed or rejoined.
    pub node: NodeId,
    /// Simulated time of the event.
    pub at: SimTime,
    /// False for the crash, true for the rejoin.
    pub up: bool,
}

/// What actually travels over the simulated network.
#[derive(Debug, Clone, PartialEq)]
enum Wire {
    /// A bare tuple (reliable delivery off — the default, byte-identical to
    /// the pre-fault-model runtime).
    Raw(RemoteTuple),
    /// A sequenced tuple on a channel epoch.
    Data {
        epoch: u64,
        seq: u64,
        tuple: RemoteTuple,
    },
    /// Acknowledgement of one data packet.
    Ack { epoch: u64, seq: u64 },
}

#[derive(Debug)]
struct PendingPacket {
    tuple: RemoteTuple,
    attempts: u32,
    next_retx: SimTime,
}

#[derive(Debug)]
struct SendChannel {
    epoch: u64,
    next_seq: u64,
    unacked: BTreeMap<u64, PendingPacket>,
}

#[derive(Debug)]
struct RecvChannel {
    epoch: u64,
    next_expected: u64,
    buffer: BTreeMap<u64, RemoteTuple>,
}

#[derive(Debug)]
struct ReliableDelivery {
    rto_base: u64,
    rto_max: u64,
    /// Sender state per directed channel `(from, to)`.
    send: BTreeMap<(NodeId, NodeId), SendChannel>,
    /// Receiver state per directed channel `(from, to)`.
    recv: BTreeMap<(NodeId, NodeId), RecvChannel>,
    /// Nodes with a retransmit timer currently pending.
    retx_armed: BTreeSet<NodeId>,
    /// Bumped on every rejoin; channel epochs are sums of endpoint
    /// incarnations, so post-rejoin channels outrank pre-crash traffic.
    incarnation: BTreeMap<NodeId, u64>,
    /// Current assertion set per channel: every tuple shipped and not since
    /// retracted. This is what a rejoining node is re-synced from.
    outstanding: BTreeMap<(NodeId, NodeId), BTreeMap<String, BTreeSet<Tuple>>>,
    stats: DeliveryStats,
}

impl ReliableDelivery {
    fn new() -> Self {
        ReliableDelivery {
            rto_base: RTO_BASE_US,
            rto_max: RTO_MAX_US,
            send: BTreeMap::new(),
            recv: BTreeMap::new(),
            retx_armed: BTreeSet::new(),
            incarnation: BTreeMap::new(),
            outstanding: BTreeMap::new(),
            stats: DeliveryStats::default(),
        }
    }

    fn epoch_of(&self, a: NodeId, b: NodeId) -> u64 {
        self.incarnation.get(&a).copied().unwrap_or(0)
            + self.incarnation.get(&b).copied().unwrap_or(0)
    }
}

/// A set of Cologne instances connected by a simulated network.
pub struct DistributedCologne {
    instances: BTreeMap<NodeId, CologneInstance>,
    sim: Simulator<Wire>,
    rejected_remote_tuples: u64,
    reliable: Option<ReliableDelivery>,
    crash_log: Vec<CrashEvent>,
}

impl DistributedCologne {
    /// Wire explicitly constructed instances to a simulator (the shared tail
    /// of the [`crate::DeploymentBuilder`] and the legacy constructors).
    pub(crate) fn assemble(topology: Topology, instances: Vec<CologneInstance>) -> Self {
        let map = instances.into_iter().map(|i| (i.node(), i)).collect();
        DistributedCologne {
            instances: map,
            sim: Simulator::new(topology),
            rejected_remote_tuples: 0,
            reliable: None,
            crash_log: Vec::new(),
        }
    }

    /// Number of nodes with an instance.
    pub fn num_instances(&self) -> usize {
        self.instances.len()
    }

    /// Immutable access to one instance.
    pub fn instance(&self, node: NodeId) -> Option<&CologneInstance> {
        self.instances.get(&node)
    }

    /// Mutable access to one instance.
    pub fn instance_mut(&mut self, node: NodeId) -> Option<&mut CologneInstance> {
        self.instances.get_mut(&node)
    }

    /// All node ids with instances.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.instances.keys().copied().collect()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.sim.now()
    }

    /// Per-node traffic counters (Fig. 5 raw data).
    pub fn traffic(&self, node: NodeId) -> NodeTraffic {
        self.sim.traffic(node.0)
    }

    /// Average per-node communication overhead in KB/s so far.
    pub fn per_node_overhead_kbps(&self) -> f64 {
        self.sim.per_node_overhead_kbps()
    }

    /// The network topology.
    pub fn topology(&self) -> &Topology {
        self.sim.topology()
    }

    /// Number of received remote tuples rejected by schema validation (an
    /// unknown relation or a malformed tuple shipped by a peer). Rejected
    /// tuples are dropped instead of corrupting instance state.
    pub fn rejected_remote_tuples(&self) -> u64 {
        self.rejected_remote_tuples
    }

    // ----- fault model & reliable delivery -----------------------------------

    /// Switch shipping to the at-least-once delivery layer (sequence
    /// numbers, acks, retransmits, dedup). Implied by
    /// [`DistributedCologne::set_fault_plan`]; can also be enabled alone to
    /// measure the protocol overhead on a perfect network.
    pub fn enable_reliable_delivery(&mut self) {
        if self.reliable.is_none() {
            self.reliable = Some(ReliableDelivery::new());
        }
    }

    /// Install a fault plan on the simulated network and enable reliable
    /// delivery to survive it. The quiet default plan injects nothing but
    /// still exercises the full ack/retransmit machinery, so quiet and
    /// hostile runs of the same workload are directly comparable.
    pub fn set_fault_plan(&mut self, plan: FaultPlan) {
        self.enable_reliable_delivery();
        self.sim.set_fault_plan(plan);
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.sim.fault_plan()
    }

    /// Counters of the delivery layer (all zero while it is disabled).
    pub fn delivery_stats(&self) -> DeliveryStats {
        self.reliable.as_ref().map(|r| r.stats).unwrap_or_default()
    }

    /// Number of data packets shipped and not yet acked. Zero means every
    /// shipped tuple has been delivered and acknowledged — the network is
    /// quiescent (out-of-order buffers are provably empty too: a buffered
    /// packet was acked, so a sequence gap implies an unacked packet).
    pub fn reliable_in_flight(&self) -> u64 {
        self.reliable
            .as_ref()
            .map(|r| r.send.values().map(|ch| ch.unacked.len() as u64).sum())
            .unwrap_or(0)
    }

    /// True while `node` is crashed.
    pub fn is_down(&self, node: NodeId) -> bool {
        self.sim.is_down(node.0)
    }

    /// Drain the log of crash/rejoin events processed so far.
    pub fn take_crash_log(&mut self) -> Vec<CrashEvent> {
        std::mem::take(&mut self.crash_log)
    }

    /// Run the event loop (messages, retransmits, crash events) until the
    /// network is quiescent — no data packet unacked — or `deadline` is
    /// reached. Returns true when quiescence was reached. With reliable
    /// delivery disabled this is just [`DistributedCologne::run_messages_until`]
    /// (a perfect network is quiescent once its queue drains).
    ///
    /// Unacked packets always have a retransmit timer pending, so this
    /// cannot deadlock: either the acks arrive or the clock reaches
    /// `deadline`. A node that stays crashed past `deadline` keeps its
    /// inbound packets unacked — pick deadlines beyond the rejoin when
    /// settling across a crash window.
    pub fn settle(&mut self, deadline: SimTime) -> bool {
        self.run_messages_until(deadline);
        self.reliable_in_flight() == 0
    }

    /// Process events until `node` is up again (or `deadline` passes);
    /// returns true when the node is up. Messages and retransmits keep
    /// flowing while waiting.
    pub fn await_node(&mut self, node: NodeId, deadline: SimTime) -> bool {
        while self.is_down(node) {
            let Some((_, event)) = self.sim.next_event_until(deadline) else {
                break;
            };
            self.dispatch(event, &mut |_, _| TimerOutcome::default());
        }
        !self.is_down(node)
    }

    /// Schedule a timer at a node. Tags must stay below [`RETX_TIMER_TAG`],
    /// which is reserved for the delivery layer.
    pub fn schedule_timer(&mut self, node: NodeId, delay: SimTime, tag: u64) {
        debug_assert!(tag < RETX_TIMER_TAG, "timer tag reserved for retransmits");
        self.sim.schedule_timer(node.0, delay, tag);
    }

    /// Ship remote tuples originating at `from` into the simulated network.
    pub fn ship(&mut self, from: NodeId, tuples: Vec<RemoteTuple>) {
        for t in tuples {
            self.ship_one(from, t);
        }
    }

    fn ship_one(&mut self, from: NodeId, t: RemoteTuple) {
        let Some(r) = self.reliable.as_mut() else {
            let size = t.wire_size();
            self.sim.send_message(from.0, t.dest.0, Wire::Raw(t), size);
            return;
        };
        // A crashed node produces nothing; drop instead of queueing
        // retransmit state that could never be serviced while down.
        if self.sim.is_down(from.0) {
            return;
        }
        let to = t.dest;
        let assertions = r
            .outstanding
            .entry((from, to))
            .or_default()
            .entry(t.relation.clone())
            .or_default();
        if t.insert {
            assertions.insert(t.tuple.clone());
        } else {
            assertions.remove(&t.tuple);
        }
        let epoch = r.epoch_of(from, to);
        let ch = r.send.entry((from, to)).or_insert_with(|| SendChannel {
            epoch,
            next_seq: 0,
            unacked: BTreeMap::new(),
        });
        let seq = ch.next_seq;
        ch.next_seq += 1;
        let next_retx = self.sim.now().plus_us(r.rto_base);
        ch.unacked.insert(
            seq,
            PendingPacket {
                tuple: t.clone(),
                attempts: 0,
                next_retx,
            },
        );
        r.stats.data_packets_sent += 1;
        let epoch = ch.epoch;
        let size = t.wire_size() + DATA_HEADER_BYTES;
        self.sim.send_message(
            from.0,
            to.0,
            Wire::Data {
                epoch,
                seq,
                tuple: t,
            },
            size,
        );
        if r.retx_armed.insert(from) {
            self.sim
                .schedule_timer(from.0, SimTime(r.rto_base), RETX_TIMER_TAG);
        }
    }

    // ----- per-node solver invocation ---------------------------------------

    /// Invoke every instance's solver, one node after another in ascending
    /// node order. Solver outputs addressed to other nodes are shipped into
    /// the simulated network (in node order, after all nodes finished) and
    /// drained from the returned reports.
    ///
    /// Returns the per-node [`SolveReport`]s, or the first error in node
    /// order. On error nothing is shipped; local materializations that
    /// already happened on other nodes are kept (identical to the parallel
    /// path).
    pub fn invoke_solvers(&mut self) -> Result<BTreeMap<NodeId, SolveReport>, CologneError> {
        let mut results = Vec::with_capacity(self.instances.len());
        for (node, inst) in self.instances.iter_mut() {
            results.push((*node, inst.invoke_solver()));
        }
        self.finish_invocations(results)
    }

    /// [`DistributedCologne::invoke_solvers`] with a streaming
    /// [`cologne_solver::SolveObserver`] threaded through every node's
    /// search. Nodes run sequentially in ascending node order, so under
    /// deterministic limits the merged event stream is deterministic too.
    /// An observer cancellation stops the node being solved (its instance
    /// forgets its incremental caches) and still cancels every later node's
    /// search as soon as it starts, since the observer keeps breaking.
    pub fn invoke_solvers_observed(
        &mut self,
        observer: &mut dyn cologne_solver::SolveObserver,
    ) -> Result<BTreeMap<NodeId, SolveReport>, CologneError> {
        let mut results = Vec::with_capacity(self.instances.len());
        for (node, inst) in self.instances.iter_mut() {
            results.push((*node, inst.invoke_solver_with_observer(observer)));
        }
        self.finish_invocations(results)
    }

    /// [`DistributedCologne::invoke_solvers`], but with the per-node
    /// grounding and solving running concurrently (one scoped thread per
    /// node). The per-node COPs of the paper's distributed executions are
    /// independent, so this is safe parallelism; the discrete-event network
    /// stays deterministic because solver outputs are shipped only after
    /// every node finished, in ascending node order — the same schedule as
    /// the sequential path. Reports (and therefore tables) are bit-identical
    /// to the sequential path as long as per-node search limits are
    /// deterministic (node/fail limits rather than wall-clock limits).
    pub fn invoke_solvers_parallel(
        &mut self,
    ) -> Result<BTreeMap<NodeId, SolveReport>, CologneError> {
        let mut results = Vec::with_capacity(self.instances.len());
        std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .instances
                .iter_mut()
                .map(|(node, inst)| (*node, scope.spawn(move || inst.invoke_solver())))
                .collect();
            for (node, handle) in handles {
                results.push((
                    node,
                    handle.join().expect("per-node solver thread panicked"),
                ));
            }
        });
        self.finish_invocations(results)
    }

    /// Common tail of the sequential and parallel invocation paths: surface
    /// the first error in node order, otherwise drain every report's
    /// outgoing tuples into the network in node order.
    fn finish_invocations(
        &mut self,
        results: Vec<(NodeId, Result<SolveReport, CologneError>)>,
    ) -> Result<BTreeMap<NodeId, SolveReport>, CologneError> {
        let mut reports = BTreeMap::new();
        for (node, result) in results {
            reports.insert(node, result?);
        }
        for (node, report) in reports.iter_mut() {
            let outgoing = std::mem::take(&mut report.outgoing);
            self.ship(*node, outgoing);
        }
        Ok(reports)
    }

    // ----- event loop ---------------------------------------------------------

    /// Run the event loop until `limit`, delivering messages to instances and
    /// invoking `on_timer` for timer events. Returns the number of events
    /// processed. Events scheduled beyond `limit` stay queued for a later
    /// run — they are never consumed and dropped.
    pub fn run_until<F>(&mut self, limit: SimTime, mut on_timer: F) -> u64
    where
        F: FnMut(&mut CologneInstance, u64) -> TimerOutcome,
    {
        let mut handled = 0;
        while let Some((_, event)) = self.sim.next_event_until(limit) {
            self.dispatch(event, &mut on_timer);
            handled += 1;
        }
        handled
    }

    /// Convenience: run with no timer handling (messages only).
    pub fn run_messages_until(&mut self, limit: SimTime) -> u64 {
        self.run_until(limit, |_, _| TimerOutcome::default())
    }

    fn dispatch(
        &mut self,
        event: Event<Wire>,
        on_timer: &mut dyn FnMut(&mut CologneInstance, u64) -> TimerOutcome,
    ) {
        match event {
            Event::Message { src, dest, payload } => match payload {
                Wire::Raw(tuple) => self.deliver(NodeId(src), NodeId(dest), &tuple),
                Wire::Data { epoch, seq, tuple } => {
                    self.on_data(NodeId(src), NodeId(dest), epoch, seq, tuple)
                }
                Wire::Ack { epoch, seq } => {
                    // the ack travels receiver -> sender: `src` is the acker
                    self.on_ack(NodeId(src), NodeId(dest), epoch, seq)
                }
            },
            Event::Timer {
                node,
                tag: RETX_TIMER_TAG,
            } => self.on_retx(NodeId(node)),
            Event::Timer { node, tag } => {
                let node = NodeId(node);
                if let Some(inst) = self.instances.get_mut(&node) {
                    let outcome = on_timer(inst, tag);
                    self.ship(node, outcome.outgoing);
                    if let Some((delay, next_tag)) = outcome.reschedule {
                        self.sim.schedule_timer(node.0, delay, next_tag);
                    }
                }
            }
            Event::NodeDown { node } => self.on_crash(NodeId(node)),
            Event::NodeUp { node } => self.on_rejoin(NodeId(node)),
        }
    }

    /// Hand one tuple to the destination instance through the validated
    /// ingest path; malformed remote tuples are rejected (counted), not
    /// applied — a misbehaving peer cannot corrupt this node's tables.
    fn deliver(&mut self, from: NodeId, node: NodeId, remote: &RemoteTuple) {
        if let Some(inst) = self.instances.get_mut(&node) {
            if inst.try_receive(from, remote).is_err() {
                self.rejected_remote_tuples += 1;
            } else {
                let outgoing = inst.run_rules();
                self.ship(node, outgoing);
            }
        }
    }

    /// A data packet arrived at `to` from `from`.
    fn on_data(&mut self, from: NodeId, to: NodeId, epoch: u64, seq: u64, tuple: RemoteTuple) {
        let Some(r) = self.reliable.as_mut() else {
            // Data framing without the delivery layer (can't normally
            // happen): degrade to direct delivery.
            self.deliver(from, to, &tuple);
            return;
        };
        let expected_epoch = r.epoch_of(from, to);
        let ch = r.recv.entry((from, to)).or_insert_with(|| RecvChannel {
            epoch: expected_epoch,
            next_expected: 0,
            buffer: BTreeMap::new(),
        });
        if epoch < ch.epoch {
            // Pre-crash traffic; not acked, so the sender's (also reset)
            // channel never sees a stale ack either.
            r.stats.stale_epoch_dropped += 1;
            return;
        }
        if epoch > ch.epoch {
            ch.epoch = epoch;
            ch.next_expected = 0;
            ch.buffer.clear();
        }
        // Ack every packet of the current epoch, duplicates included — the
        // previous ack may have been lost.
        r.stats.acks_sent += 1;
        self.sim
            .send_message(to.0, from.0, Wire::Ack { epoch, seq }, ACK_BYTES);
        match seq.cmp(&ch.next_expected) {
            std::cmp::Ordering::Less => {
                r.stats.duplicates_dropped += 1;
            }
            std::cmp::Ordering::Greater => {
                if ch.buffer.insert(seq, tuple).is_none() {
                    r.stats.out_of_order_buffered += 1;
                } else {
                    r.stats.duplicates_dropped += 1;
                }
            }
            std::cmp::Ordering::Equal => {
                let mut ready = vec![tuple];
                ch.next_expected += 1;
                while let Some(t) = ch.buffer.remove(&ch.next_expected) {
                    ready.push(t);
                    ch.next_expected += 1;
                }
                for t in ready {
                    self.deliver(from, to, &t);
                }
            }
        }
    }

    /// `acker` acknowledged packet `seq` of the channel `sender -> acker`.
    fn on_ack(&mut self, acker: NodeId, sender: NodeId, epoch: u64, seq: u64) {
        let Some(r) = self.reliable.as_mut() else {
            return;
        };
        if let Some(ch) = r.send.get_mut(&(sender, acker)) {
            if ch.epoch == epoch {
                ch.unacked.remove(&seq);
            }
        }
    }

    /// The retransmit timer fired at `node`: resend every due unacked packet
    /// with capped exponential backoff, then re-arm for the earliest next
    /// due time while anything stays unacked.
    fn on_retx(&mut self, node: NodeId) {
        let Some(r) = self.reliable.as_mut() else {
            return;
        };
        let now = self.sim.now();
        let mut to_send = Vec::new();
        let mut next_due_us: Option<u64> = None;
        for ((_, to), ch) in r
            .send
            .range_mut((node, NodeId(u32::MIN))..=(node, NodeId(u32::MAX)))
        {
            for (seq, p) in ch.unacked.iter_mut() {
                if p.next_retx <= now {
                    p.attempts += 1;
                    let backoff = (r.rto_base << p.attempts.min(10)).min(r.rto_max);
                    p.next_retx = now.plus_us(backoff);
                    to_send.push((*to, ch.epoch, *seq, p.tuple.clone()));
                }
                let due = p.next_retx.0.saturating_sub(now.0).max(1);
                next_due_us = Some(next_due_us.map_or(due, |d| d.min(due)));
            }
        }
        r.stats.retransmits += to_send.len() as u64;
        if let Some(due) = next_due_us {
            self.sim
                .schedule_timer(node.0, SimTime(due), RETX_TIMER_TAG);
        } else {
            r.retx_armed.remove(&node);
        }
        for (to, epoch, seq, tuple) in to_send {
            let size = tuple.wire_size() + DATA_HEADER_BYTES;
            self.sim
                .send_message(node.0, to.0, Wire::Data { epoch, seq, tuple }, size);
        }
    }

    /// `node` crashed: its delivery state vanishes with it, and the instance
    /// drops everything it had ingested from peers (plus solver caches) —
    /// only local base facts survive the restart.
    fn on_crash(&mut self, node: NodeId) {
        let at = self.sim.now();
        if let Some(r) = self.reliable.as_mut() {
            r.stats.crashes += 1;
            r.send.retain(|(from, _), _| *from != node);
            r.recv.retain(|(_, to), _| *to != node);
            r.retx_armed.remove(&node);
        }
        if let Some(inst) = self.instances.get_mut(&node) {
            inst.crash_reset();
        }
        self.crash_log.push(CrashEvent {
            node,
            at,
            up: false,
        });
    }

    /// `node` rejoined: bump its incarnation (post-rejoin channels outrank
    /// every pre-crash packet and ack), reset all channels touching it, and
    /// re-sync state over the fresh channels — every peer re-ships its
    /// current assertion set for `node`, and `node` re-ships its own
    /// last-known assertions (repairing anything that was in flight when it
    /// died). All re-deliveries go through the schema-validated ingest path
    /// and are set-semantics no-ops where state already agrees.
    fn on_rejoin(&mut self, node: NodeId) {
        let at = self.sim.now();
        let mut resync: Vec<(NodeId, Vec<RemoteTuple>)> = Vec::new();
        if let Some(r) = self.reliable.as_mut() {
            r.stats.rejoins += 1;
            *r.incarnation.entry(node).or_default() += 1;
            r.send.retain(|(from, to), _| *from != node && *to != node);
            r.recv.retain(|(from, to), _| *from != node && *to != node);
            for ((from, to), rels) in r.outstanding.iter() {
                if *from != node && *to != node {
                    continue;
                }
                let tuples: Vec<RemoteTuple> = rels
                    .iter()
                    .flat_map(|(relation, rows)| {
                        rows.iter().map(|row| RemoteTuple {
                            dest: *to,
                            relation: relation.clone(),
                            tuple: row.clone(),
                            insert: true,
                        })
                    })
                    .collect();
                if !tuples.is_empty() {
                    resync.push((*from, tuples));
                }
            }
            r.stats.resync_tuples += resync.iter().map(|(_, t)| t.len() as u64).sum::<u64>();
        }
        self.crash_log.push(CrashEvent { node, at, up: true });
        for (from, tuples) in resync {
            self.ship(from, tuples);
        }
    }

    /// Default link profile used by convenience constructors in tests.
    pub fn default_link() -> LinkProps {
        LinkProps::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::deploy::{Deployment, DeploymentBuilder};
    use cologne_colog::ProgramParams;
    use cologne_datalog::Value;
    use cologne_net::LinkFaults;

    /// A two-rule ping/pong program: every `ping` received at a node derives a
    /// `pong` back at the sender.
    const PING: &str = r#"
        r1 pong(@Y,X) <- ping(@X,Y).
    "#;

    fn two_node_driver() -> Deployment {
        DeploymentBuilder::new(PING)
            .topology(Topology::line(2, LinkProps::default()))
            .build()
            .unwrap()
    }

    fn ship_ping(d: &mut DistributedCologne, n: i64) {
        for i in 0..n {
            d.ship(
                NodeId(0),
                vec![RemoteTuple {
                    dest: NodeId(1),
                    relation: "ping".into(),
                    tuple: vec![Value::Addr(NodeId(0)), Value::Int(i)],
                    insert: true,
                }],
            );
        }
    }

    #[test]
    fn message_round_trip_between_instances() {
        let mut d = two_node_driver();
        assert_eq!(d.num_instances(), 2);
        // node 0 learns ping(@0, 1): rule head pong(@1, 0) must be shipped to node 1
        d.insert(
            NodeId(0),
            "ping",
            vec![Value::Addr(NodeId(0)), Value::Addr(NodeId(1))],
        )
        .unwrap();
        let handled = d.run_messages_until(SimTime::from_secs(5));
        assert_eq!(handled, 1);
        let inst1 = d.instance(NodeId(1)).unwrap();
        assert!(inst1.contains(
            "pong",
            &vec![Value::Addr(NodeId(1)), Value::Addr(NodeId(0))]
        ));
        // traffic was accounted on both ends
        assert!(d.traffic(NodeId(0)).bytes_sent > 0);
        assert!(d.traffic(NodeId(1)).bytes_received > 0);
        assert!(d.per_node_overhead_kbps() > 0.0);
        assert_eq!(d.rejected_remote_tuples(), 0);
        // the delivery layer is off by default
        assert_eq!(d.delivery_stats(), DeliveryStats::default());
    }

    #[test]
    fn malformed_remote_tuples_are_rejected_on_delivery() {
        let mut d = two_node_driver();
        // a peer ships a tuple with the wrong arity for `ping`
        d.ship(
            NodeId(0),
            vec![RemoteTuple {
                dest: NodeId(1),
                relation: "ping".into(),
                tuple: vec![Value::Addr(NodeId(1))],
                insert: true,
            }],
        );
        d.run_messages_until(SimTime::from_secs(5));
        assert_eq!(d.rejected_remote_tuples(), 1);
        assert_eq!(d.instance(NodeId(1)).unwrap().scan("ping").count(), 0);
    }

    #[test]
    fn timers_fire_and_reschedule() {
        let mut d = two_node_driver();
        d.schedule_timer(NodeId(0), SimTime::from_secs(1), 7);
        let mut fired = Vec::new();
        d.run_until(SimTime::from_secs(10), |inst, tag| {
            fired.push((inst.node(), tag));
            if tag < 9 {
                TimerOutcome {
                    outgoing: Vec::new(),
                    reschedule: Some((SimTime::from_secs(1), tag + 1)),
                }
            } else {
                TimerOutcome::default()
            }
        });
        assert_eq!(fired, vec![(NodeId(0), 7), (NodeId(0), 8), (NodeId(0), 9)]);
        assert_eq!(d.now(), SimTime::from_secs(3));
    }

    #[test]
    fn timer_outcome_can_ship_tuples() {
        let mut d = two_node_driver();
        d.schedule_timer(NodeId(0), SimTime::from_millis(10), 0);
        d.run_until(SimTime::from_secs(5), |inst, _| TimerOutcome {
            outgoing: vec![RemoteTuple {
                dest: NodeId(1),
                relation: "ping".into(),
                tuple: vec![Value::Addr(NodeId(1)), Value::Addr(inst.node())],
                insert: true,
            }],
            reschedule: None,
        });
        // node 1 received ping(@1, 0) and derived pong(@0, 1), shipped back to node 0
        let inst0 = d.instance(NodeId(0)).unwrap();
        assert!(inst0.contains(
            "pong",
            &vec![Value::Addr(NodeId(0)), Value::Addr(NodeId(1))]
        ));
    }

    #[test]
    fn sparse_deployments_drop_messages_to_missing_nodes() {
        // Topology nodes without an instance are allowed; messages addressed
        // to them are dropped without panicking.
        let topo = Topology::line(3, LinkProps::default());
        let instances = vec![
            CologneInstance::new(NodeId(0), PING, ProgramParams::new()).unwrap(),
            CologneInstance::new(NodeId(2), PING, ProgramParams::new()).unwrap(),
        ];
        let mut d = DistributedCologne::assemble(topo, instances);
        assert_eq!(d.nodes(), vec![NodeId(0), NodeId(2)]);
        assert!(d.instance(NodeId(1)).is_none());
        assert!(d.instance_mut(NodeId(2)).is_some());
        assert_eq!(d.topology().num_nodes(), 3);
        d.ship(
            NodeId(0),
            vec![RemoteTuple {
                dest: NodeId(1),
                relation: "ping".into(),
                tuple: vec![Value::Addr(NodeId(1)), Value::Addr(NodeId(0))],
                insert: true,
            }],
        );
        d.run_messages_until(SimTime::from_secs(1));
        assert_eq!(d.rejected_remote_tuples(), 0);
    }

    #[test]
    fn reliable_delivery_survives_heavy_loss() {
        let mut d = two_node_driver();
        d.set_fault_plan(FaultPlan::seeded(3).link_faults(LinkFaults {
            loss: 0.5,
            ..Default::default()
        }));
        ship_ping(d.network_mut(), 20);
        assert!(d.settle(SimTime::from_secs(60)), "must reach quiescence");
        assert_eq!(d.instance(NodeId(1)).unwrap().scan("ping").count(), 20);
        let stats = d.delivery_stats();
        assert_eq!(stats.data_packets_sent, 20);
        assert!(stats.retransmits > 0, "50% loss must force retransmits");
        assert!(d.traffic(NodeId(0)).messages_dropped > 0);
    }

    #[test]
    fn duplicates_are_deduplicated_at_the_receiver() {
        let mut d = two_node_driver();
        d.set_fault_plan(FaultPlan::seeded(4).link_faults(LinkFaults {
            duplicate: 1.0,
            ..Default::default()
        }));
        ship_ping(d.network_mut(), 10);
        assert!(d.settle(SimTime::from_secs(60)));
        assert_eq!(d.instance(NodeId(1)).unwrap().scan("ping").count(), 10);
        let stats = d.delivery_stats();
        assert!(stats.duplicates_dropped > 0);
        assert!(d.traffic(NodeId(0)).messages_duplicated > 0);
    }

    #[test]
    fn jitter_reorder_is_masked_by_in_order_delivery() {
        let mut d = two_node_driver();
        d.set_fault_plan(FaultPlan::seeded(7).link_faults(LinkFaults {
            jitter_us: 200_000,
            ..Default::default()
        }));
        ship_ping(d.network_mut(), 30);
        assert!(d.settle(SimTime::from_secs(60)));
        assert_eq!(d.instance(NodeId(1)).unwrap().scan("ping").count(), 30);
        assert!(
            d.delivery_stats().out_of_order_buffered > 0,
            "heavy jitter must reorder some packets"
        );
    }

    #[test]
    fn partition_heals_and_traffic_completes() {
        let mut d = two_node_driver();
        d.set_fault_plan(FaultPlan::seeded(8).partition(
            vec![0],
            SimTime::ZERO,
            SimTime::from_secs(2),
        ));
        ship_ping(d.network_mut(), 5);
        // cannot settle inside the partition window
        assert!(!d.settle(SimTime::from_secs(1)));
        assert_eq!(d.instance(NodeId(1)).unwrap().scan("ping").count(), 0);
        // after it heals, retransmits get everything through
        assert!(d.settle(SimTime::from_secs(30)));
        assert_eq!(d.instance(NodeId(1)).unwrap().scan("ping").count(), 5);
    }

    #[test]
    fn crash_drops_remote_state_and_rejoin_resyncs_it() {
        let mut d = two_node_driver();
        d.set_fault_plan(FaultPlan::seeded(9).crash(
            1,
            SimTime::from_secs(5),
            SimTime::from_secs(10),
        ));
        ship_ping(d.network_mut(), 4);
        assert!(d.settle(SimTime::from_secs(3)));
        assert_eq!(d.instance(NodeId(1)).unwrap().scan("ping").count(), 4);

        // cross the crash: ingested remote state is wiped while down
        d.run_messages_until(SimTime::from_secs(6));
        assert!(d.is_down(NodeId(1)));
        assert_eq!(d.instance(NodeId(1)).unwrap().scan("ping").count(), 0);

        // rejoin: neighbors re-ship their assertion sets
        assert!(d.await_node(NodeId(1), SimTime::from_secs(20)));
        assert!(d.settle(SimTime::from_secs(30)));
        assert_eq!(d.instance(NodeId(1)).unwrap().scan("ping").count(), 4);
        let stats = d.delivery_stats();
        assert_eq!(stats.crashes, 1);
        assert_eq!(stats.rejoins, 1);
        assert!(stats.resync_tuples >= 4);
        let log = d.take_crash_log();
        assert_eq!(log.len(), 2);
        assert_eq!((log[0].node, log[0].up), (NodeId(1), false));
        assert_eq!((log[1].node, log[1].up), (NodeId(1), true));
        assert!(d.take_crash_log().is_empty());
    }

    /// Redelivering an assertion a peer already shipped (duplicate packet,
    /// rejoin resync) must be a set-semantics no-op: the engine counts
    /// multiplicities, so a naive re-insert would leave the row visible
    /// after its one legitimate retraction. A row asserted by two distinct
    /// peers, on the other hand, survives one peer's retraction.
    #[test]
    fn redelivered_assertions_are_idempotent_per_sender() {
        let mut d = DeploymentBuilder::new(PING)
            .topology(Topology::full_mesh(3, LinkProps::default()))
            .build()
            .unwrap();
        let row = vec![Value::Addr(NodeId(0)), Value::Int(7)];
        let remote = |insert| RemoteTuple {
            dest: NodeId(2),
            relation: "ping".into(),
            tuple: row.clone(),
            insert,
        };
        // the same sender asserts the same row twice, then retracts once
        d.ship(NodeId(0), vec![remote(true), remote(true)]);
        assert!(d.settle(SimTime::from_secs(5)));
        assert_eq!(d.instance(NodeId(2)).unwrap().scan("ping").count(), 1);
        d.ship(NodeId(0), vec![remote(false)]);
        assert!(d.settle(SimTime::from_secs(10)));
        assert_eq!(
            d.instance(NodeId(2)).unwrap().scan("ping").count(),
            0,
            "one retraction must erase a redelivered assertion"
        );
        // two distinct peers assert the row; one retraction keeps it alive
        d.ship(NodeId(0), vec![remote(true)]);
        d.ship(NodeId(1), vec![remote(true)]);
        assert!(d.settle(SimTime::from_secs(15)));
        d.ship(NodeId(0), vec![remote(false)]);
        assert!(d.settle(SimTime::from_secs(20)));
        assert_eq!(
            d.instance(NodeId(2)).unwrap().scan("ping").count(),
            1,
            "a row another peer still asserts must survive"
        );
        d.ship(NodeId(1), vec![remote(false)]);
        assert!(d.settle(SimTime::from_secs(25)));
        assert_eq!(d.instance(NodeId(2)).unwrap().scan("ping").count(), 0);
    }

    #[test]
    fn quiet_plan_reliable_run_is_deterministic() {
        let run = || {
            let mut d = two_node_driver();
            d.set_fault_plan(
                FaultPlan::seeded(12)
                    .link_faults(LinkFaults {
                        loss: 0.3,
                        duplicate: 0.2,
                        jitter_us: 30_000,
                    })
                    .crash(1, SimTime::from_secs(2), SimTime::from_secs(4)),
            );
            ship_ping(d.network_mut(), 25);
            let settled = d.settle(SimTime::from_secs(120));
            (
                settled,
                d.delivery_stats(),
                d.traffic(NodeId(0)),
                d.traffic(NodeId(1)),
                d.instance(NodeId(1)).unwrap().scan("ping").count(),
            )
        };
        let a = run();
        let b = run();
        assert_eq!(a, b, "seeded hostile runs must be byte-identical");
        assert!(a.0, "hostile run must still settle");
        assert_eq!(a.4, 25);
    }
}
