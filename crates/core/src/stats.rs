//! The unified statistics surface: [`StatsSnapshot`].
//!
//! Counters used to be scattered across four getters on three types —
//! [`PipelineStats`] and the engine's [`EngineStats`] per instance,
//! cumulative/last [`SearchStats`] per solver, [`DeliveryStats`] on the
//! network — forcing a monitoring client to know the whole object graph.
//! [`crate::Deployment::stats`] folds them into one value that the
//! `cologne-serve` wire protocol ships as a single frame: per-node rows
//! ([`NodeStats`]) plus the network-wide delivery counters.

use cologne_datalog::{EngineStats, NodeId};
use cologne_solver::SearchStats;

use crate::distributed::DeliveryStats;
use crate::pipeline::PipelineStats;

/// Every counter of one node, in one row.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NodeStats {
    /// The node the row describes.
    pub node: NodeId,
    /// Number of `invokeSolver` executions so far.
    pub solver_invocations: u64,
    /// Grounding-pipeline counters (plan builds, full vs incremental).
    pub pipeline: PipelineStats,
    /// Datalog-engine counters (deltas, derivations, updates, ...).
    pub engine: EngineStats,
    /// Search statistics accumulated over every invocation.
    pub search_total: SearchStats,
    /// Search statistics of the most recent invocation (`None` before the
    /// first solve).
    pub last_search: Option<SearchStats>,
}

/// One deployment-wide statistics snapshot; see [`crate::Deployment::stats`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct StatsSnapshot {
    /// Per-node counters in ascending node order.
    pub nodes: Vec<NodeStats>,
    /// Reliable-delivery counters of the simulated network (all zero until
    /// [`crate::DistributedCologne::enable_reliable_delivery`] or a fault
    /// plan switches shipping to the ack/retry layer).
    pub delivery: DeliveryStats,
    /// Remote tuples rejected at reception because they failed the
    /// destination node's schema check.
    pub rejected_remote_tuples: u64,
}

impl StatsSnapshot {
    /// The row of one node.
    pub fn node(&self, node: NodeId) -> Option<&NodeStats> {
        self.nodes.iter().find(|row| row.node == node)
    }

    /// Search statistics merged across every node (the deployment-wide
    /// totals a dashboard would chart).
    pub fn search_merged(&self) -> SearchStats {
        let mut total = SearchStats::default();
        for row in &self.nodes {
            total.merge(&row.search_total);
        }
        total
    }

    /// Total solver invocations across every node.
    pub fn total_invocations(&self) -> u64 {
        self.nodes.iter().map(|row| row.solver_invocations).sum()
    }
}

impl std::fmt::Display for StatsSnapshot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "deployment: {} node(s), {} solver invocation(s)",
            self.nodes.len(),
            self.total_invocations()
        )?;
        for row in &self.nodes {
            writeln!(
                f,
                "  {}: invocations={} ground(full={}, incremental={}) \
                 engine(deltas={}, derivations={}, updates={}) \
                 search(nodes={}, fails={}, solutions={})",
                row.node,
                row.solver_invocations,
                row.pipeline.full_rebuilds,
                row.pipeline.incremental_builds,
                row.engine.external_deltas,
                row.engine.derivations,
                row.engine.updates,
                row.search_total.nodes,
                row.search_total.fails,
                row.search_total.solutions,
            )?;
        }
        write!(
            f,
            "  network: data={} retx={} acks={} dup={} rejected={}",
            self.delivery.data_packets_sent,
            self.delivery.retransmits,
            self.delivery.acks_sent,
            self.delivery.duplicates_dropped,
            self.rejected_remote_tuples,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lookup_and_totals() {
        let mut snap = StatsSnapshot::default();
        for (n, inv, nodes) in [(0u32, 2u64, 10u64), (1, 3, 20)] {
            let mut row = NodeStats {
                node: NodeId(n),
                solver_invocations: inv,
                ..Default::default()
            };
            row.search_total.nodes = nodes;
            snap.nodes.push(row);
        }
        assert_eq!(snap.total_invocations(), 5);
        assert_eq!(snap.search_merged().nodes, 30);
        assert_eq!(snap.node(NodeId(1)).unwrap().solver_invocations, 3);
        assert!(snap.node(NodeId(9)).is_none());
        let text = format!("{snap}");
        assert!(text.contains("2 node(s)"));
        assert!(text.contains("5 solver invocation(s)"));
    }
}
