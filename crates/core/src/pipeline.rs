//! The staged solve pipeline: cached grounding plan, recycled solver arena,
//! reusable search space, delta-aware grounding reuse, warm-started solving
//! and the per-program search configuration.
//!
//! `invokeSolver` executions recur on every epoch and after every input delta
//! (Sec. 6 of the paper measures exactly this loop), so the runtime splits the
//! ground→solve hot path into stages with different lifetimes:
//!
//! | stage | lifetime | held by |
//! |---|---|---|
//! | [`GroundingPlan`] | per program (until params change) | `SolvePipeline` |
//! | [`GroundingScratch`] (model arena + [`cologne_solver::SearchSpace`] + replay caches) | across invocations (recycled) | `SolvePipeline` |
//! | grounding run → [`GroundedCop`] | one invocation (retained when clean) | caller |
//!
//! [`crate::CologneInstance`] owns one `SolvePipeline`; the plan is built
//! once at construction, reused by every invocation, and only rebuilt after
//! [`crate::CologneInstance::params_mut`] invalidates it. The number of plan
//! builds is observable through [`SolvePipeline::stats`] so tests and
//! benchmarks can assert that the cache actually hits.
//!
//! # Incremental re-optimization
//!
//! On top of the plan cache the pipeline carries two further pieces of state
//! across invocations — the machinery behind the paper's *continuous*
//! optimization story:
//!
//! * **Grounding reuse.** [`SolvePipeline::ground`] accepts the engine's
//!   [`DeltaSummary`] since the previous grounding. When no relation the
//!   plan marks relevant is dirty, the previous [`GroundedCop`] (retained at
//!   [`SolvePipeline::recycle`] time) is returned as-is; otherwise the COP
//!   is re-grounded with clean `var` declarations replayed from the
//!   scratch's caches (see [`crate::ground`](mod@crate::ground)'s module docs). Either way the
//!   run counts as an *incremental build*; runs without usable delta
//!   information (first invocation, parameter change, a previous error)
//!   count as *full rebuilds*. The [`PipelineStats::full_rebuilds`] /
//!   [`PipelineStats::incremental_builds`] counter pair is the observable
//!   analogue of [`PipelineStats::plan_builds`].
//! * **Warm-started solving.** After every feasible solve the pipeline
//!   remembers the best assignment of each `var`-declared row, keyed by the
//!   row's concrete attributes (so the memory survives structural change:
//!   rows that persist across invocations keep their hint, arrived rows
//!   simply have none). The next solve maps the memory onto the new model,
//!   completes it into a full assignment with
//!   [`cologne_solver::complete_hints`], and passes it to the search as
//!   [`cologne_solver::SearchConfig::warm_start`] — the initial bound for
//!   exact branch-and-bound, the initial incumbent for LNS. Disabled via
//!   [`ProgramParams::warm_start`].
//!
//! The pipeline is also the [`SearchConfig`] surface for COP solving: the
//! branching/value heuristics are seeded from
//! [`ProgramParams::solver_branching`] at construction and adjustable live
//! through [`SolvePipeline::search_config_mut`]; the time/node limits are
//! read from the current [`ProgramParams`] at every [`SolvePipeline::solve`]
//! so that parameter updates (e.g. dropping the wall-clock limit for
//! deterministic tests) take effect immediately.

use std::collections::BTreeMap;

use cologne_colog::{
    Analysis, GoalKind, Program, ProgramParams, SolverBoundMode, SolverBranching,
    SolverMode as ParamsSolverMode,
};
use cologne_datalog::{DeltaSummary, Engine, Value};
use cologne_solver::{
    complete_hints, BoundMode, Branching, DestroyStrategy, LnsConfig, Objective, SearchConfig,
    SearchOutcome, SolveObserver, SolverMode, VarId,
};

use crate::error::CologneError;
use crate::ground::{GroundedCop, GroundingPlan, GroundingScratch};

/// Warm memory: for each (`var`-declaration index, solver-attribute
/// position), the remembered value per concrete row key (the row's
/// non-solver attribute values). Row keys are stable across invocations as
/// long as the row itself persists, whatever happens to the rest of the
/// COP; the two-level shape lets the per-solve lookups borrow one key built
/// per row instead of allocating a key per (row, position).
type WarmMemory = BTreeMap<(usize, usize), BTreeMap<Vec<Value>, i64>>;

/// Snapshot of the pipeline's grounding counters — the single observability
/// surface for plan caching and incremental re-optimization, shared by
/// [`SolvePipeline::stats`] and [`crate::CologneInstance::pipeline_stats`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Grounding-plan builds over the pipeline's lifetime: 1 after
    /// construction, +1 per rebuild forced by invalidation. A constant value
    /// across repeated invocations demonstrates plan reuse.
    pub plan_builds: u64,
    /// Groundings that ran without usable delta information: the first
    /// invocation, every invocation after a parameter change, recovery from
    /// a grounding error, and the invocation after a cancelled solve.
    pub full_rebuilds: u64,
    /// Delta-aware groundings: runs that consulted the engine's delta
    /// summary and reused whatever it proved unchanged — up to the entire
    /// previous COP. Steadily increasing counts demonstrate the incremental
    /// re-optimization path is active.
    pub incremental_builds: u64,
}

/// Cached grounding + search state for repeated solver invocations on one
/// program.
pub struct SolvePipeline {
    plan: GroundingPlan,
    scratch: GroundingScratch,
    plan_builds: u64,
    dirty: bool,
    search: SearchConfig,
    /// The previous invocation's COP, kept whole (not recycled) so a clean
    /// delta summary can reuse it without re-grounding.
    retained: Option<GroundedCop>,
    /// True once a grounding completed since the last invalidation — the
    /// precondition for treating the next delta-aware grounding as
    /// incremental.
    grounded_before: bool,
    /// True when the most recent [`SolvePipeline::ground`] handed back the
    /// retained COP untouched (nothing relevant changed). Search is
    /// deterministic given a COP and configuration, so callers may reuse
    /// their previous solve result outright in that case.
    last_was_reuse: bool,
    full_rebuilds: u64,
    incremental_builds: u64,
    /// Best known value of each `var`-declared solver attribute, keyed by
    /// row identity (see [`WarmMemory`]).
    warm: WarmMemory,
}

/// Map the compiler-facing branching knob onto the solver heuristic.
fn branching_of(params: &ProgramParams) -> Branching {
    match params.solver_branching {
        SolverBranching::InputOrder => Branching::InputOrder,
        SolverBranching::FirstFail => Branching::SmallestDomain,
        SolverBranching::LargestDomain => Branching::LargestDomain,
    }
}

/// Map the compiler-facing dual-bound knob onto the solver's bound mode.
fn bound_mode_of(params: &ProgramParams) -> BoundMode {
    match params.solver_bound_mode {
        SolverBoundMode::Off => BoundMode::Off,
        SolverBoundMode::Linear => BoundMode::Linear,
        SolverBoundMode::Relaxed => BoundMode::Relaxed,
        SolverBoundMode::Auto => BoundMode::Auto,
    }
}

/// Map the compiler-facing solver mode onto the solver's search mode.
fn mode_of(params: &ProgramParams) -> SolverMode {
    match &params.solver_mode {
        ParamsSolverMode::Exact => SolverMode::Exact,
        ParamsSolverMode::Lns(p) => SolverMode::Lns(LnsConfig {
            seed: p.seed,
            destroy_fraction: p.destroy_fraction,
            destroy_strategy: if p.conflict_guided {
                DestroyStrategy::ConflictGuided
            } else {
                DestroyStrategy::Random
            },
            dive_node_limit: p.dive_node_limit,
            repair_fail_base: p.repair_fail_base,
            repair_growth: p.repair_growth,
            max_iterations: p.max_iterations,
        }),
    }
}

impl SolvePipeline {
    /// Build the pipeline (and its first plan) for a compiled program. The
    /// search configuration is seeded from the parameters' branching
    /// heuristic.
    pub fn new(program: &Program, analysis: &Analysis, params: &ProgramParams) -> Self {
        SolvePipeline {
            plan: GroundingPlan::build(program, analysis, params),
            scratch: GroundingScratch::default(),
            plan_builds: 1,
            dirty: false,
            search: SearchConfig {
                branching: branching_of(params),
                mode: mode_of(params),
                ..Default::default()
            },
            retained: None,
            grounded_before: false,
            last_was_reuse: false,
            full_rebuilds: 0,
            incremental_builds: 0,
            warm: WarmMemory::new(),
        }
    }

    /// Mark the cached plan stale (parameters changed); it is rebuilt lazily
    /// on the next [`SolvePipeline::ground`]. Every cross-invocation cache —
    /// the retained COP, the replay caches, the warm-start memory — is
    /// dropped with it: a parameter change may alter domains, constants or
    /// rule layouts, so the next grounding is a forced full rebuild.
    pub fn invalidate(&mut self) {
        self.dirty = true;
        self.grounded_before = false;
        self.last_was_reuse = false;
        if let Some(cop) = self.retained.take() {
            self.scratch.recycle(cop);
        }
        self.scratch.clear_caches();
        self.warm.clear();
    }

    /// Drop every cross-invocation cache — the retained COP, the replay
    /// caches, the warm memory and the incremental precondition — without
    /// invalidating the grounding plan. Called after an observer cancelled a
    /// solve: the cancelled run is not reproducible, so the next grounding
    /// must be a clean full rebuild.
    pub fn forget(&mut self) {
        self.grounded_before = false;
        self.last_was_reuse = false;
        if let Some(cop) = self.retained.take() {
            self.scratch.recycle(cop);
        }
        self.scratch.clear_caches();
        self.warm.clear();
    }

    /// Snapshot of the grounding counters.
    pub fn stats(&self) -> PipelineStats {
        PipelineStats {
            plan_builds: self.plan_builds,
            full_rebuilds: self.full_rebuilds,
            incremental_builds: self.incremental_builds,
        }
    }

    /// True when the most recent [`SolvePipeline::ground`] returned the
    /// retained previous COP untouched. Since the search is a deterministic
    /// function of the COP and the search configuration, a caller holding
    /// the previous solve's result may reuse it without re-solving.
    pub fn last_ground_was_reuse(&self) -> bool {
        self.last_was_reuse
    }

    /// The current grounding plan.
    pub fn plan(&self) -> &GroundingPlan {
        &self.plan
    }

    /// The search configuration used by [`SolvePipeline::solve`]. Its
    /// time/node limits, worker count and dual-bound knobs are overridden
    /// from the live [`ProgramParams`] at each solve; the heuristics
    /// (branching, value choice, split threshold) are authoritative here.
    pub fn search_config(&self) -> &SearchConfig {
        &self.search
    }

    /// Mutable access to the search configuration (e.g. to switch branching
    /// heuristics between invocations).
    pub fn search_config_mut(&mut self) -> &mut SearchConfig {
        &mut self.search
    }

    /// Run the grounding stage against the current engine state, rebuilding
    /// the plan first if it was invalidated.
    ///
    /// `delta` is the engine's delta summary since the previous grounding
    /// (see [`cologne_datalog::Engine::take_delta_summary`]); `None` forces
    /// a full rebuild. With a summary and a previous grounding to reuse, the
    /// run counts as incremental: a summary touching none of the plan's
    /// relevant relations hands back the retained [`GroundedCop`] without
    /// re-grounding, anything else re-grounds with clean `var` declarations
    /// replayed. The produced COP is byte-identical to a full rebuild in
    /// every case.
    pub fn ground(
        &mut self,
        program: &Program,
        analysis: &Analysis,
        params: &ProgramParams,
        engine: &Engine,
        delta: Option<&DeltaSummary>,
    ) -> Result<GroundedCop, CologneError> {
        if self.dirty {
            self.plan = GroundingPlan::build(program, analysis, params);
            // Parameters are the source of truth for the branching heuristic
            // and the solver mode: a params_mut() change to either must take
            // effect like every other parameter change. (Manual
            // search_config_mut edits persist only until the next
            // invalidation.)
            self.search.branching = branching_of(params);
            self.search.mode = mode_of(params);
            self.plan_builds += 1;
            self.dirty = false;
        }
        self.last_was_reuse = false;
        let enabled = params.delta_grounding;
        let delta = if enabled && self.grounded_before {
            delta
        } else {
            None
        };
        if let Some(delta) = delta {
            self.incremental_builds += 1;
            if !self.plan.is_affected_by(delta) {
                if let Some(cop) = self.retained.take() {
                    self.last_was_reuse = true;
                    return Ok(cop);
                }
            }
        } else {
            self.full_rebuilds += 1;
        }
        if let Some(cop) = self.retained.take() {
            self.scratch.recycle(cop);
        }
        let result = if enabled {
            self.plan
                .ground_delta(program, analysis, params, engine, &mut self.scratch, delta)
        } else {
            // Delta grounding is off: ground without maintaining the replay
            // caches the delta-aware path would consume.
            self.plan
                .ground(program, analysis, params, engine, &mut self.scratch)
        };
        match &result {
            Ok(_) => self.grounded_before = true,
            Err(_) => {
                // The replay caches may be half-refreshed and the engine's
                // delta checkpoint was already consumed: drop everything so
                // the next grounding starts from scratch.
                self.grounded_before = false;
                self.scratch.clear_caches();
                self.warm.clear();
            }
        }
        result
    }

    /// Solve a grounded COP with the pipeline's search configuration (limits
    /// taken live from `params`), reusing the scratch's
    /// [`cologne_solver::SearchSpace`] so repeated invocations share one
    /// trail/store/queue allocation.
    ///
    /// When [`ProgramParams::warm_start`] is on and a previous solution is
    /// remembered, the remembered values are mapped onto the COP's decision
    /// variables by row identity, completed into a full assignment and
    /// passed to the search as its warm start; a feasible outcome refreshes
    /// the memory.
    pub fn solve(&mut self, cop: &GroundedCop, params: &ProgramParams) -> SearchOutcome {
        self.solve_observed(cop, params, None)
    }

    /// [`SolvePipeline::solve`] with a streaming
    /// [`cologne_solver::SolveObserver`] threaded into the search (exact and
    /// LNS alike). The warm-start completion probe runs unobserved — its
    /// incumbents are hint candidates, not solutions of this solve.
    pub fn solve_observed(
        &mut self,
        cop: &GroundedCop,
        params: &ProgramParams,
        observer: Option<&mut dyn SolveObserver>,
    ) -> SearchOutcome {
        let mut config = self.search.clone();
        config.time_limit = params.solver_max_time;
        config.node_limit = params.solver_node_limit;
        config.workers = params.solver_workers;
        config.bound_mode = bound_mode_of(params);
        config.gap_limit = params.solver_gap_limit;
        if params.warm_start {
            if let Some(objective) = cop_objective(cop) {
                let hints = self.warm_hints(cop);
                if !hints.is_empty() {
                    // The probe's fail budget scales with the model: hint
                    // completion only searches over the (typically few)
                    // unhinted variables, so a budget this size trips only
                    // when the remembered solution is badly obsolete.
                    let fail_limit = 256 + 4 * cop.model.num_vars() as u64;
                    config.warm_start = complete_hints(
                        &cop.model,
                        objective,
                        &hints,
                        &mut self.scratch.space,
                        fail_limit,
                    );
                }
            }
        }
        let outcome = cop.solve_in_observed(&config, &mut self.scratch.space, observer);
        if params.warm_start {
            if let Some(best) = &outcome.best {
                self.remember(cop, best);
            }
        }
        outcome
    }

    /// Map the warm memory onto the COP's decision variables: one hint per
    /// remembered `var`-table row that still exists (by concrete-key
    /// identity) in this grounding.
    fn warm_hints(&self, cop: &GroundedCop) -> Vec<(VarId, i64)> {
        if self.warm.is_empty() {
            return Vec::new();
        }
        let mut hints = Vec::new();
        for (decl, vp) in self.plan.var_plans.iter().enumerate() {
            let Some(rows) = cop.solver_tables.get(&vp.table) else {
                continue;
            };
            for row in rows {
                let key = concrete_key(row, &vp.is_solver_position);
                for (pos, value) in row.iter().enumerate() {
                    let Value::Sym(sym) = value else { continue };
                    if let Some(&hint) = self
                        .warm
                        .get(&(decl, pos))
                        .and_then(|per_row| per_row.get(&key))
                    {
                        hints.push((cop.syms[sym.0 as usize], hint));
                    }
                }
            }
        }
        hints
    }

    /// Refresh the warm memory from a feasible solve: remember the assigned
    /// value of every `var`-declared solver attribute, keyed by row
    /// identity. The memory is replaced wholesale so departed rows do not
    /// linger.
    fn remember(&mut self, cop: &GroundedCop, best: &cologne_solver::Assignment) {
        self.warm.clear();
        for (decl, vp) in self.plan.var_plans.iter().enumerate() {
            let Some(rows) = cop.solver_tables.get(&vp.table) else {
                continue;
            };
            for row in rows {
                let key = concrete_key(row, &vp.is_solver_position);
                for (pos, value) in row.iter().enumerate() {
                    let Value::Sym(sym) = value else { continue };
                    let assigned = best.value(cop.syms[sym.0 as usize]);
                    self.warm
                        .entry((decl, pos))
                        .or_default()
                        .insert(key.clone(), assigned);
                }
            }
        }
    }

    /// Reclaim a finished invocation's COP. The model arena is not reset
    /// here: the COP is retained whole so the next grounding can hand it
    /// back untouched when the delta summary proves nothing relevant
    /// changed; it is recycled into the scratch the moment a re-grounding
    /// becomes necessary.
    pub fn recycle(&mut self, cop: GroundedCop) {
        self.retained = Some(cop);
    }
}

/// The COP's optimization objective in solver terms (`None` for satisfy /
/// trivially-empty goals — warm starts do not apply there).
fn cop_objective(cop: &GroundedCop) -> Option<Objective> {
    match cop.objective {
        Some((GoalKind::Minimize, obj)) => Some(Objective::Minimize(obj)),
        Some((GoalKind::Maximize, obj)) => Some(Objective::Maximize(obj)),
        _ => None,
    }
}

/// The concrete (non-solver) attribute values of a `var`-table row — the
/// row's cross-invocation identity.
fn concrete_key(row: &[Value], is_solver_position: &[bool]) -> Vec<Value> {
    row.iter()
        .zip(is_solver_position.iter())
        .filter(|(_, &solver)| !solver)
        .map(|(v, _)| v.clone())
        .collect()
}
