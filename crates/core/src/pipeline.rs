//! The staged solve pipeline: cached grounding plan, recycled solver arena,
//! reusable search space and the per-program search configuration.
//!
//! `invokeSolver` executions recur on every epoch and after every input delta
//! (Sec. 6 of the paper measures exactly this loop), so the runtime splits the
//! ground→solve hot path into stages with different lifetimes:
//!
//! | stage | lifetime | held by |
//! |---|---|---|
//! | [`GroundingPlan`] | per program (until params change) | `SolvePipeline` |
//! | [`GroundingScratch`] (model arena + [`cologne_solver::SearchSpace`]) | across invocations (recycled) | `SolvePipeline` |
//! | grounding run → [`GroundedCop`] | one invocation | caller |
//!
//! [`crate::CologneInstance`] owns one `SolvePipeline`; the plan is built
//! once at construction, reused by every invocation, and only rebuilt after
//! [`crate::CologneInstance::params_mut`] invalidates it. The number of plan
//! builds is observable through [`SolvePipeline::plan_builds`] so tests and
//! benchmarks can assert that the cache actually hits.
//!
//! The pipeline is also the [`SearchConfig`] surface for COP solving: the
//! branching/value heuristics are seeded from
//! [`ProgramParams::solver_branching`] at construction and adjustable live
//! through [`SolvePipeline::search_config_mut`]; the time/node limits are
//! read from the current [`ProgramParams`] at every [`SolvePipeline::solve`]
//! so that parameter updates (e.g. dropping the wall-clock limit for
//! deterministic tests) take effect immediately.

use cologne_colog::{
    Analysis, Program, ProgramParams, SolverBranching, SolverMode as ParamsSolverMode,
};
use cologne_datalog::Engine;
use cologne_solver::{
    Branching, DestroyStrategy, LnsConfig, SearchConfig, SearchOutcome, SolverMode,
};

use crate::error::CologneError;
use crate::ground::{GroundedCop, GroundingPlan, GroundingScratch};

/// Cached grounding + search state for repeated solver invocations on one
/// program.
pub struct SolvePipeline {
    plan: GroundingPlan,
    scratch: GroundingScratch,
    plan_builds: u64,
    dirty: bool,
    search: SearchConfig,
}

/// Map the compiler-facing branching knob onto the solver heuristic.
fn branching_of(params: &ProgramParams) -> Branching {
    match params.solver_branching {
        SolverBranching::InputOrder => Branching::InputOrder,
        SolverBranching::FirstFail => Branching::SmallestDomain,
        SolverBranching::LargestDomain => Branching::LargestDomain,
    }
}

/// Map the compiler-facing solver mode onto the solver's search mode.
fn mode_of(params: &ProgramParams) -> SolverMode {
    match &params.solver_mode {
        ParamsSolverMode::Exact => SolverMode::Exact,
        ParamsSolverMode::Lns(p) => SolverMode::Lns(LnsConfig {
            seed: p.seed,
            destroy_fraction: p.destroy_fraction,
            destroy_strategy: if p.conflict_guided {
                DestroyStrategy::ConflictGuided
            } else {
                DestroyStrategy::Random
            },
            dive_node_limit: p.dive_node_limit,
            repair_fail_base: p.repair_fail_base,
            repair_growth: p.repair_growth,
            max_iterations: p.max_iterations,
        }),
    }
}

impl SolvePipeline {
    /// Build the pipeline (and its first plan) for a compiled program. The
    /// search configuration is seeded from the parameters' branching
    /// heuristic.
    pub fn new(program: &Program, analysis: &Analysis, params: &ProgramParams) -> Self {
        SolvePipeline {
            plan: GroundingPlan::build(program, analysis, params),
            scratch: GroundingScratch::default(),
            plan_builds: 1,
            dirty: false,
            search: SearchConfig {
                branching: branching_of(params),
                mode: mode_of(params),
                ..Default::default()
            },
        }
    }

    /// Mark the cached plan stale (parameters changed); it is rebuilt lazily
    /// on the next [`SolvePipeline::ground`].
    pub fn invalidate(&mut self) {
        self.dirty = true;
    }

    /// Number of times a plan has been built over the pipeline's lifetime
    /// (1 after construction; +1 per rebuild triggered by invalidation).
    pub fn plan_builds(&self) -> u64 {
        self.plan_builds
    }

    /// The current grounding plan.
    pub fn plan(&self) -> &GroundingPlan {
        &self.plan
    }

    /// The search configuration used by [`SolvePipeline::solve`]. Its
    /// time/node limits are overridden from the live [`ProgramParams`] at
    /// each solve; the heuristics (branching, value choice, split threshold)
    /// are authoritative here.
    pub fn search_config(&self) -> &SearchConfig {
        &self.search
    }

    /// Mutable access to the search configuration (e.g. to switch branching
    /// heuristics between invocations).
    pub fn search_config_mut(&mut self) -> &mut SearchConfig {
        &mut self.search
    }

    /// Run the grounding stage against the current engine state, rebuilding
    /// the plan first if it was invalidated.
    pub fn ground(
        &mut self,
        program: &Program,
        analysis: &Analysis,
        params: &ProgramParams,
        engine: &Engine,
    ) -> Result<GroundedCop, CologneError> {
        if self.dirty {
            self.plan = GroundingPlan::build(program, analysis, params);
            // Parameters are the source of truth for the branching heuristic
            // and the solver mode: a params_mut() change to either must take
            // effect like every other parameter change. (Manual
            // search_config_mut edits persist only until the next
            // invalidation.)
            self.search.branching = branching_of(params);
            self.search.mode = mode_of(params);
            self.plan_builds += 1;
            self.dirty = false;
        }
        self.plan
            .ground(program, analysis, params, engine, &mut self.scratch)
    }

    /// Solve a grounded COP with the pipeline's search configuration (limits
    /// taken live from `params`), reusing the scratch's [`cologne_solver::SearchSpace`] so
    /// repeated invocations share one trail/store/queue allocation.
    pub fn solve(&mut self, cop: &GroundedCop, params: &ProgramParams) -> SearchOutcome {
        let mut config = self.search.clone();
        config.time_limit = params.solver_max_time;
        config.node_limit = params.solver_node_limit;
        cop.solve_in(&config, &mut self.scratch.space)
    }

    /// Reclaim a finished invocation's model and symbol table for reuse.
    pub fn recycle(&mut self, cop: GroundedCop) {
        self.scratch.recycle(cop);
    }
}
