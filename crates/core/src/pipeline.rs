//! The staged solve pipeline: cached grounding plan + recycled solver arena.
//!
//! `invokeSolver` executions recur on every epoch and after every input delta
//! (Sec. 6 of the paper measures exactly this loop), so the runtime splits the
//! ground→solve hot path into stages with different lifetimes:
//!
//! | stage | lifetime | held by |
//! |---|---|---|
//! | [`GroundingPlan`] | per program (until params change) | `SolvePipeline` |
//! | [`GroundingScratch`] | across invocations (recycled) | `SolvePipeline` |
//! | grounding run → [`GroundedCop`] | one invocation | caller |
//!
//! [`crate::CologneInstance`] owns one `SolvePipeline`; the plan is built
//! once at construction, reused by every invocation, and only rebuilt after
//! [`crate::CologneInstance::params_mut`] invalidates it. The number of plan
//! builds is observable through [`SolvePipeline::plan_builds`] so tests and
//! benchmarks can assert that the cache actually hits.

use cologne_colog::{Analysis, Program, ProgramParams};
use cologne_datalog::Engine;

use crate::error::CologneError;
use crate::ground::{GroundedCop, GroundingPlan, GroundingScratch};

/// Cached grounding state for repeated solver invocations on one program.
pub struct SolvePipeline {
    plan: GroundingPlan,
    scratch: GroundingScratch,
    plan_builds: u64,
    dirty: bool,
}

impl SolvePipeline {
    /// Build the pipeline (and its first plan) for a compiled program.
    pub fn new(program: &Program, analysis: &Analysis, params: &ProgramParams) -> Self {
        SolvePipeline {
            plan: GroundingPlan::build(program, analysis, params),
            scratch: GroundingScratch::default(),
            plan_builds: 1,
            dirty: false,
        }
    }

    /// Mark the cached plan stale (parameters changed); it is rebuilt lazily
    /// on the next [`SolvePipeline::ground`].
    pub fn invalidate(&mut self) {
        self.dirty = true;
    }

    /// Number of times a plan has been built over the pipeline's lifetime
    /// (1 after construction; +1 per rebuild triggered by invalidation).
    pub fn plan_builds(&self) -> u64 {
        self.plan_builds
    }

    /// The current grounding plan.
    pub fn plan(&self) -> &GroundingPlan {
        &self.plan
    }

    /// Run the grounding stage against the current engine state, rebuilding
    /// the plan first if it was invalidated.
    pub fn ground(
        &mut self,
        program: &Program,
        analysis: &Analysis,
        params: &ProgramParams,
        engine: &Engine,
    ) -> Result<GroundedCop, CologneError> {
        if self.dirty {
            self.plan = GroundingPlan::build(program, analysis, params);
            self.plan_builds += 1;
            self.dirty = false;
        }
        self.plan
            .ground(program, analysis, params, engine, &mut self.scratch)
    }

    /// Reclaim a finished invocation's model and symbol table for reuse.
    pub fn recycle(&mut self, cop: GroundedCop) {
        self.scratch.recycle(cop);
    }
}
