//! Translation of Colog AST fragments into the Datalog engine's IR.
//!
//! Regular Colog rules (class [`cologne_colog::RuleClass::Regular`]) execute
//! directly on the incremental engine; this module lowers them, resolving
//! named parameters from [`ProgramParams`] along the way. Solver rules are
//! *not* lowered here — they are grounded per COP invocation by
//! [`crate::ground`](mod@crate::ground).

use cologne_colog::{Arg, BodyElem, CExpr, COp, Literal, Predicate, ProgramParams, RuleDecl};
use cologne_datalog::{Atom, BodyItem, Expr, Head, HeadArg, Op, Rule, Term, Value};

use crate::error::CologneError;

/// Convert a Colog literal to a runtime value, resolving named parameters.
pub fn literal_to_value(lit: &Literal, params: &ProgramParams) -> Result<Value, CologneError> {
    match lit {
        Literal::Int(i) => Ok(Value::Int(*i)),
        Literal::Float(f) => Ok(Value::float(*f)),
        Literal::Str(s) => Ok(Value::Str(s.clone())),
        Literal::Param(p) => params
            .constant(p)
            .map(Value::Int)
            .ok_or_else(|| CologneError::MissingParameter(p.clone())),
    }
}

/// Convert a predicate argument to a term (aggregates are rejected; they only
/// appear in rule heads, which use [`predicate_to_head`]).
pub fn arg_to_term(arg: &Arg, params: &ProgramParams) -> Result<Term, CologneError> {
    match arg {
        Arg::Loc(v) | Arg::Var(v) => Ok(Term::Var(v.clone())),
        Arg::Const(lit) => Ok(Term::Const(literal_to_value(lit, params)?)),
        Arg::Agg(func, v) => Err(CologneError::UnsupportedExpression {
            rule: String::new(),
            detail: format!("aggregate {}<{v}> outside a rule head", func.keyword()),
        }),
    }
}

/// Convert a body predicate to an engine atom.
pub fn predicate_to_atom(pred: &Predicate, params: &ProgramParams) -> Result<Atom, CologneError> {
    let args = pred
        .args
        .iter()
        .map(|a| arg_to_term(a, params))
        .collect::<Result<Vec<_>, _>>()?;
    Ok(Atom {
        relation: pred.name.clone(),
        args,
        located: pred.location().is_some(),
    })
}

/// Convert a head predicate (which may contain aggregates) to an engine head.
pub fn predicate_to_head(pred: &Predicate, params: &ProgramParams) -> Result<Head, CologneError> {
    let mut args = Vec::with_capacity(pred.args.len());
    for a in &pred.args {
        match a {
            Arg::Agg(func, v) => args.push(HeadArg::Agg(*func, v.clone())),
            other => args.push(HeadArg::Term(arg_to_term(other, params)?)),
        }
    }
    Ok(Head {
        relation: pred.name.clone(),
        args,
        located: pred.location().is_some(),
    })
}

fn cop_to_op(op: COp) -> Op {
    match op {
        COp::Add => Op::Add,
        COp::Sub => Op::Sub,
        COp::Mul => Op::Mul,
        COp::Div => Op::Div,
        COp::Eq => Op::Eq,
        COp::Ne => Op::Ne,
        COp::Lt => Op::Lt,
        COp::Le => Op::Le,
        COp::Gt => Op::Gt,
        COp::Ge => Op::Ge,
    }
}

/// Convert a Colog expression to an engine expression. Named parameters are
/// substituted by their integer values; unbound uppercase identifiers that
/// happen to name a parameter (e.g. `F_mindiff`) are substituted as well.
pub fn cexpr_to_expr(e: &CExpr, params: &ProgramParams) -> Result<Expr, CologneError> {
    match e {
        CExpr::Var(v) => {
            if let Some(c) = params.constant(v) {
                Ok(Expr::Term(Term::Const(Value::Int(c))))
            } else {
                Ok(Expr::Term(Term::Var(v.clone())))
            }
        }
        CExpr::Lit(lit) => Ok(Expr::Term(Term::Const(literal_to_value(lit, params)?))),
        CExpr::Bin(op, a, b) => Ok(Expr::BinOp(
            cop_to_op(*op),
            Box::new(cexpr_to_expr(a, params)?),
            Box::new(cexpr_to_expr(b, params)?),
        )),
        CExpr::Abs(inner) => Ok(Expr::Abs(Box::new(cexpr_to_expr(inner, params)?))),
        CExpr::Neg(inner) => Ok(Expr::Neg(Box::new(cexpr_to_expr(inner, params)?))),
    }
}

/// Lower a regular Colog rule to an engine rule.
pub fn rule_to_datalog(rule: &RuleDecl, params: &ProgramParams) -> Result<Rule, CologneError> {
    let head = predicate_to_head(&rule.head, params)?;
    let mut body = Vec::with_capacity(rule.body.len());
    for elem in &rule.body {
        match elem {
            BodyElem::Pred(p) => body.push(BodyItem::Atom(predicate_to_atom(p, params)?)),
            BodyElem::Expr(e) => body.push(BodyItem::Filter(cexpr_to_expr(e, params)?)),
            BodyElem::Assign(v, e) => {
                body.push(BodyItem::Assign(v.clone(), cexpr_to_expr(e, params)?))
            }
        }
    }
    Ok(Rule {
        label: rule.label.clone(),
        head,
        body,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use cologne_colog::parse_program;
    use cologne_datalog::{Engine, NodeId};

    #[test]
    fn literals_and_parameters_resolve() {
        let params = ProgramParams::new().with_constant("max_migrates", 3);
        assert_eq!(
            literal_to_value(&Literal::Int(7), &params).unwrap(),
            Value::Int(7)
        );
        assert_eq!(
            literal_to_value(&Literal::Param("max_migrates".into()), &params).unwrap(),
            Value::Int(3)
        );
        assert!(matches!(
            literal_to_value(&Literal::Param("missing".into()), &params),
            Err(CologneError::MissingParameter(_))
        ));
        assert_eq!(
            literal_to_value(&Literal::Str("x".into()), &params).unwrap(),
            Value::Str("x".into())
        );
    }

    #[test]
    fn uppercase_parameters_substituted_in_expressions() {
        let params = ProgramParams::new().with_constant("F_mindiff", 2);
        let e = cexpr_to_expr(&CExpr::Var("F_mindiff".into()), &params).unwrap();
        assert_eq!(e, Expr::Term(Term::Const(Value::Int(2))));
        // ordinary variables stay variables
        let v = cexpr_to_expr(&CExpr::Var("Cpu".into()), &params).unwrap();
        assert_eq!(v, Expr::Term(Term::Var("Cpu".into())));
    }

    #[test]
    fn lowered_rule_runs_on_the_engine() {
        let program =
            parse_program("r1 toAssign(Vid,Hid) <- vm(Vid,Cpu,Mem), host(Hid,Cpu2,Mem2), Cpu>20.")
                .unwrap();
        let params = ProgramParams::new();
        let rule = rule_to_datalog(&program.rules[0], &params).unwrap();
        let mut engine = Engine::new(NodeId(0));
        engine.add_rule(rule);
        engine.insert("vm", vec![Value::Int(1), Value::Int(50), Value::Int(512)]);
        engine.insert("vm", vec![Value::Int(2), Value::Int(10), Value::Int(512)]);
        engine.insert("host", vec![Value::Int(7), Value::Int(0), Value::Int(0)]);
        engine.run();
        // only the VM above the CPU threshold joins
        assert_eq!(engine.relation_len("toAssign"), 1);
        assert!(engine.contains("toAssign", &vec![Value::Int(1), Value::Int(7)]));
    }

    #[test]
    fn located_predicates_keep_their_flag() {
        let program = parse_program("r2 ping(@Y,X) <- link(@X,Y).").unwrap();
        let rule = rule_to_datalog(&program.rules[0], &ProgramParams::new()).unwrap();
        assert!(rule.head.located);
        match &rule.body[0] {
            BodyItem::Atom(a) => assert!(a.located),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn aggregate_heads_translate() {
        let program = parse_program("d1 hostCpu(Hid,SUM<C>) <- assign(Vid,Hid,C).").unwrap();
        let rule = rule_to_datalog(&program.rules[0], &ProgramParams::new()).unwrap();
        assert!(rule.is_aggregate());
    }

    #[test]
    fn aggregates_in_body_are_rejected() {
        let pred = Predicate::new(
            "x",
            vec![Arg::Agg(cologne_datalog::AggFunc::Sum, "C".into())],
        );
        assert!(predicate_to_atom(&pred, &ProgramParams::new()).is_err());
    }

    #[test]
    fn assignment_and_abs_translate() {
        let program = parse_program("r3 out(X,R) <- in(X,R1), R:=-R1, |R1-3|<=5.").unwrap();
        let rule = rule_to_datalog(&program.rules[0], &ProgramParams::new()).unwrap();
        assert!(matches!(rule.body[1], BodyItem::Assign(_, _)));
        assert!(matches!(rule.body[2], BodyItem::Filter(_)));
    }
}
