//! The typed solve entry point: [`SolveRequest`] → [`SolveResponse`].
//!
//! Historically a deployment exposed an ad-hoc family of solve calls —
//! `invoke`, `invoke_parallel`, `invoke_at`, plus `*_with_observer` variants
//! taking a raw [`SolveObserver`] — and remote callers had no way to express
//! "solve this, stream me the incumbents" as data. This module folds the
//! family into one request/response pair that is used identically in-process
//! ([`crate::Deployment::solve`]) and over the `cologne-serve` wire protocol:
//!
//! * [`SolveRequest`] — which nodes to solve ([`SolveTarget`]), whether the
//!   per-node searches may run concurrently, and whether (and how) to
//!   capture streaming [`SolveEvent`]s ([`EventOptions`]).
//! * [`SolveResponse`] — the per-node [`SolveReport`]s plus the captured
//!   event stream and a drop count.
//! * [`EventSink`] — the streaming flavor: events are pushed to the sink as
//!   they happen instead of being buffered, and the sink can request
//!   cooperative cancellation (the building block the server uses to cancel
//!   a solve when its client disconnects).
//!
//! Events are emitted at deterministic points of the search, so two runs of
//! the same node-limited request observe identical event sequences and
//! byte-identical responses once wall-clock fields are normalized
//! ([`SolveResponse::normalized`]).

use std::collections::BTreeMap;
use std::ops::ControlFlow;

use cologne_datalog::NodeId;
use cologne_solver::{SolveEvent, SolveObserver};

use crate::error::CologneError;
use crate::instance::SolveReport;

/// Which nodes a [`SolveRequest`] runs `invokeSolver` on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolveTarget {
    /// Every node, in ascending node order; solver outputs addressed to
    /// other nodes are shipped into the network afterwards (in node order).
    All,
    /// One node only; its outgoing tuples are *kept* in the report for the
    /// caller to route, matching the historical `invoke_at` contract.
    Node(NodeId),
}

/// How a [`SolveRequest`] captures streaming [`SolveEvent`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EventOptions {
    /// Maximum number of events buffered in the response; excess events are
    /// counted in [`SolveResponse::dropped_events`] instead of growing the
    /// buffer (streaming sinks apply their own backpressure instead).
    pub capacity: usize,
    /// Cancel the solve cooperatively after this many incumbents have been
    /// observed across all targeted nodes.
    pub cancel_after_incumbents: Option<u64>,
}

impl EventOptions {
    /// Buffer up to `capacity` events, never cancelling.
    pub fn buffered(capacity: usize) -> Self {
        EventOptions {
            capacity,
            cancel_after_incumbents: None,
        }
    }
}

/// One typed solve invocation; build with [`SolveRequest::all`] or
/// [`SolveRequest::at`] and refine with the builder methods.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SolveRequest {
    /// Which nodes to solve.
    pub target: SolveTarget,
    /// Run the per-node searches concurrently (scoped threads). Only valid
    /// without event capture: parallel searches interleave their event
    /// streams nondeterministically, which would break the determinism
    /// contract, so [`SolveRequest::validate`] rejects the combination.
    pub parallel: bool,
    /// Capture streaming events (`None` = fire-and-forget solve).
    pub events: Option<EventOptions>,
}

impl SolveRequest {
    /// Solve every node (sequentially, no event capture).
    pub fn all() -> Self {
        SolveRequest {
            target: SolveTarget::All,
            parallel: false,
            events: None,
        }
    }

    /// Solve one node (no event capture).
    pub fn at(node: NodeId) -> Self {
        SolveRequest {
            target: SolveTarget::Node(node),
            parallel: false,
            events: None,
        }
    }

    /// Run per-node searches concurrently (all-nodes targets only, and
    /// incompatible with event capture).
    pub fn parallel(mut self) -> Self {
        self.parallel = true;
        self
    }

    /// Capture up to `capacity` streaming events into the response.
    pub fn with_events(mut self, capacity: usize) -> Self {
        self.events = Some(EventOptions::buffered(capacity));
        self
    }

    /// Cancel cooperatively after `n` incumbents (implies event capture; the
    /// buffer defaults to [`SolveRequest::DEFAULT_EVENT_CAPACITY`] when
    /// [`SolveRequest::with_events`] was not called first).
    pub fn cancel_after_incumbents(mut self, n: u64) -> Self {
        let mut opts = self
            .events
            .unwrap_or_else(|| EventOptions::buffered(Self::DEFAULT_EVENT_CAPACITY));
        opts.cancel_after_incumbents = Some(n);
        self.events = Some(opts);
        self
    }

    /// Event buffer size used when cancellation is requested without an
    /// explicit [`SolveRequest::with_events`] capacity.
    pub const DEFAULT_EVENT_CAPACITY: usize = 1024;

    /// Reject combinations that cannot honor the determinism contract.
    pub fn validate(&self) -> Result<(), CologneError> {
        if self.parallel && self.events.is_some() {
            return Err(CologneError::InvalidConfig(
                "parallel solves cannot stream events deterministically; \
                 drop .parallel() or the event options"
                    .into(),
            ));
        }
        if self.parallel && matches!(self.target, SolveTarget::Node(_)) {
            return Err(CologneError::InvalidConfig(
                "parallel solves target all nodes; use SolveRequest::all().parallel()".into(),
            ));
        }
        if let Some(opts) = &self.events {
            if opts.capacity == 0 {
                return Err(CologneError::InvalidConfig(
                    "event capacity must be positive (omit events to disable capture)".into(),
                ));
            }
        }
        Ok(())
    }
}

/// Result of one [`SolveRequest`]: per-node reports plus the captured event
/// stream.
#[derive(Debug, Clone, PartialEq)]
pub struct SolveResponse {
    /// Per-node solve reports, keyed by node in ascending order.
    pub reports: BTreeMap<NodeId, SolveReport>,
    /// Captured events in emission order, tagged with the emitting node
    /// (empty unless the request asked for events; streaming solves deliver
    /// events to the sink instead).
    pub events: Vec<(NodeId, SolveEvent)>,
    /// Events discarded because the buffer (or a streaming transport queue)
    /// was full. Transport-dependent: not part of the determinism contract.
    pub dropped_events: u64,
}

impl SolveResponse {
    /// The report of one node.
    pub fn report(&self, node: NodeId) -> Option<&SolveReport> {
        self.reports.get(&node)
    }

    /// The sole report of a single-target response.
    pub fn single(&self) -> Option<&SolveReport> {
        match self.reports.len() {
            1 => self.reports.values().next(),
            _ => None,
        }
    }

    /// Debug rendering with every wall-clock field zeroed — the
    /// byte-identity surface: two deterministic (node-limited) runs of the
    /// same request, local or through the wire, render identically here even
    /// though their elapsed times differ. `dropped_events` is also zeroed
    /// because drop counts depend on transport queue timing.
    pub fn normalized(&self) -> String {
        let mut r = self.clone();
        for report in r.reports.values_mut() {
            report.stats.elapsed_micros = 0;
        }
        r.dropped_events = 0;
        format!("{r:?}")
    }
}

/// Receiver of streaming solve events, the push-flavored counterpart of
/// [`SolveResponse::events`]. Return `false` to request cooperative
/// cancellation of the remaining search.
pub trait EventSink {
    /// One event emitted by `node`'s search.
    fn event(&mut self, node: NodeId, event: SolveEvent) -> bool;
}

/// The buffering sink behind [`crate::Deployment::solve`]: keeps the first
/// `capacity` events, counts the rest.
pub(crate) struct BufferSink<'a> {
    pub(crate) events: &'a mut Vec<(NodeId, SolveEvent)>,
    pub(crate) capacity: usize,
    pub(crate) dropped: &'a mut u64,
}

impl EventSink for BufferSink<'_> {
    fn event(&mut self, node: NodeId, event: SolveEvent) -> bool {
        if self.events.len() < self.capacity {
            self.events.push((node, event));
        } else {
            *self.dropped += 1;
        }
        true
    }
}

/// Adapter threading one node's [`SolveObserver`] hooks into an
/// [`EventSink`], sharing the incumbent counter and cancel flag across the
/// per-node observers of a multi-node request (so `cancel_after_incumbents`
/// counts globally and a cancellation keeps cancelling later nodes).
pub(crate) struct SinkObserver<'a> {
    pub(crate) node: NodeId,
    pub(crate) sink: &'a mut dyn EventSink,
    pub(crate) incumbents: &'a mut u64,
    pub(crate) cancel_after: Option<u64>,
    pub(crate) cancelled: &'a mut bool,
}

impl SinkObserver<'_> {
    fn emit(&mut self, event: SolveEvent) {
        if !self.sink.event(self.node, event) {
            *self.cancelled = true;
        }
    }

    fn flow(&self) -> ControlFlow<()> {
        if *self.cancelled {
            ControlFlow::Break(())
        } else {
            ControlFlow::Continue(())
        }
    }
}

impl SolveObserver for SinkObserver<'_> {
    fn on_incumbent(
        &mut self,
        objective: Option<i64>,
        _best: &cologne_solver::Assignment,
    ) -> ControlFlow<()> {
        *self.incumbents += 1;
        self.emit(SolveEvent::Incumbent { objective });
        if matches!(self.cancel_after, Some(n) if *self.incumbents >= n) {
            *self.cancelled = true;
        }
        self.flow()
    }

    fn on_restart(&mut self, restarts: u64, next_budget: u64) -> ControlFlow<()> {
        self.emit(SolveEvent::Restart {
            restarts,
            next_budget,
        });
        self.flow()
    }

    fn on_lns_iteration(
        &mut self,
        iteration: u64,
        improved: bool,
        best_objective: Option<i64>,
    ) -> ControlFlow<()> {
        self.emit(SolveEvent::LnsIteration {
            iteration,
            improved,
            best_objective,
        });
        self.flow()
    }

    fn on_node_budget(&mut self, stats: &cologne_solver::SearchStats) -> ControlFlow<()> {
        self.emit(SolveEvent::NodeBudget {
            nodes: stats.nodes,
            fails: stats.fails,
        });
        self.flow()
    }

    fn on_progress(&mut self, stats: &cologne_solver::SearchStats) -> ControlFlow<()> {
        self.emit(SolveEvent::Progress {
            nodes: stats.nodes,
            fails: stats.fails,
            solutions: stats.solutions,
            dual_bound: stats.dual_bound,
            gap: stats.gap,
        });
        self.flow()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_compose() {
        let r = SolveRequest::all();
        assert_eq!(r.target, SolveTarget::All);
        assert!(!r.parallel && r.events.is_none());
        r.validate().unwrap();

        let r = SolveRequest::at(NodeId(3)).with_events(64);
        assert_eq!(r.target, SolveTarget::Node(NodeId(3)));
        assert_eq!(r.events.unwrap().capacity, 64);
        r.validate().unwrap();

        let r = SolveRequest::all().cancel_after_incumbents(2);
        let opts = r.events.unwrap();
        assert_eq!(opts.cancel_after_incumbents, Some(2));
        assert_eq!(opts.capacity, SolveRequest::DEFAULT_EVENT_CAPACITY);

        // with_events first keeps the explicit capacity
        let r = SolveRequest::all()
            .with_events(8)
            .cancel_after_incumbents(1);
        assert_eq!(r.events.unwrap().capacity, 8);
    }

    #[test]
    fn validation_rejects_bad_combinations() {
        for bad in [
            SolveRequest::all().parallel().with_events(16),
            SolveRequest::at(NodeId(0)).parallel(),
            SolveRequest::all().with_events(0),
        ] {
            assert!(matches!(
                bad.validate(),
                Err(CologneError::InvalidConfig(_))
            ));
        }
        SolveRequest::all().parallel().validate().unwrap();
    }

    #[test]
    fn buffer_sink_caps_and_counts() {
        let mut events = Vec::new();
        let mut dropped = 0;
        let mut sink = BufferSink {
            events: &mut events,
            capacity: 2,
            dropped: &mut dropped,
        };
        for i in 0..5 {
            assert!(sink.event(NodeId(0), SolveEvent::Incumbent { objective: Some(i) }));
        }
        assert_eq!(events.len(), 2);
        assert_eq!(dropped, 3);
    }

    #[test]
    fn normalized_zeroes_wall_clock() {
        let mut reports = BTreeMap::new();
        let mut report = SolveReport {
            feasible: true,
            trivial: false,
            objective: Some(7),
            proven_optimal: true,
            stats: Default::default(),
            certificate: None,
            assignments: BTreeMap::new(),
            outgoing: Vec::new(),
        };
        report.stats.elapsed_micros = 123;
        reports.insert(NodeId(0), report);
        let a = SolveResponse {
            reports: reports.clone(),
            events: Vec::new(),
            dropped_events: 9,
        };
        let mut b = SolveResponse {
            reports,
            events: Vec::new(),
            dropped_events: 0,
        };
        b.reports.get_mut(&NodeId(0)).unwrap().stats.elapsed_micros = 456;
        assert_ne!(format!("{a:?}"), format!("{b:?}"));
        assert_eq!(a.normalized(), b.normalized());
    }
}
