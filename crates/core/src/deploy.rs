//! The unified deployment surface: [`SolverSettings`], [`DeploymentBuilder`]
//! and [`Deployment`].
//!
//! Historically, standing up a Cologne system meant three different dances:
//! `CologneInstance::new` for a single node, per-node constructor plumbing
//! for a simulated network, and a `params_mut`-then-invalidate backdoor pair
//! for solver tuning split across two structures. The
//! [`DeploymentBuilder`] subsumes all of them: one builder takes the program
//! source, the base [`ProgramParams`], a [`Topology`] (defaulting to
//! [`Topology::single`]), optional per-node parameter overrides and one
//! validated [`SolverSettings`] view — and produces a [`Deployment`] that
//! owns the single-node and distributed cases behind the same
//! `tick`/`invoke`/`handle` API.
//!
//! A `Deployment` dereferences to its inner [`DistributedCologne`], so the
//! full simulation surface (timers, traffic accounting, `run_until`) remains
//! available without duplication.

use std::collections::BTreeMap;
use std::ops::{Deref, DerefMut};
use std::time::Duration;

use cologne_colog::{ProgramParams, SolverBranching, SolverMode};
use cologne_datalog::{NodeId, Tuple};
use cologne_net::{SimTime, Topology};
use cologne_solver::{SolveObserver, ValueChoice};

use crate::distributed::DistributedCologne;
use crate::error::CologneError;
use crate::handle::RelationHandle;
use crate::instance::{CologneInstance, SolveReport};

/// The merged, validated solver-configuration view.
///
/// [`ProgramParams`] carries the compiler-facing solver knobs (limits,
/// branching, mode, re-optimization toggles) while the search *shape*
/// (value choice, split threshold) historically hid behind the
/// `search_config_mut` backdoor. This view holds both halves; apply it with
/// [`DeploymentBuilder::solver`] or
/// [`CologneInstance::apply_solver_settings`].
#[derive(Debug, Clone, PartialEq)]
pub struct SolverSettings {
    /// Wall-clock budget per COP execution (the paper's `SOLVER_MAX_TIME`).
    pub max_time: Option<Duration>,
    /// Node budget per COP execution (the deterministic alternative).
    pub node_limit: Option<u64>,
    /// Variable-selection heuristic.
    pub branching: SolverBranching,
    /// Value-selection heuristic.
    pub value_choice: ValueChoice,
    /// Domain size above which value enumeration switches to bisection
    /// (`None` = never bisect implicitly).
    pub split_threshold: Option<u64>,
    /// Exact branch-and-bound or LNS.
    pub mode: SolverMode,
    /// Worker threads per COP search (`None` = sequential). Parallel runs
    /// return the same result as the sequential engines — see the solver's
    /// `parallel` module for the determinism contract.
    pub workers: Option<std::num::NonZeroUsize>,
    /// Carry the previous best assignment into the next solve.
    pub warm_start: bool,
    /// Consult the engine's delta summary when grounding.
    pub delta_grounding: bool,
}

impl Default for SolverSettings {
    fn default() -> Self {
        let params = ProgramParams::default();
        let search = cologne_solver::SearchConfig::default();
        SolverSettings {
            max_time: params.solver_max_time,
            node_limit: params.solver_node_limit,
            branching: params.solver_branching,
            value_choice: search.value_choice,
            split_threshold: search.split_threshold,
            mode: params.solver_mode,
            workers: params.solver_workers,
            warm_start: params.warm_start,
            delta_grounding: params.delta_grounding,
        }
    }
}

impl SolverSettings {
    /// The settings currently in effect on an instance (params + search
    /// config merged back into one view).
    pub(crate) fn of_instance(
        params: &ProgramParams,
        search: &cologne_solver::SearchConfig,
    ) -> SolverSettings {
        SolverSettings {
            max_time: params.solver_max_time,
            node_limit: params.solver_node_limit,
            branching: params.solver_branching,
            value_choice: search.value_choice,
            split_threshold: search.split_threshold,
            mode: params.solver_mode.clone(),
            workers: params.solver_workers,
            warm_start: params.warm_start,
            delta_grounding: params.delta_grounding,
        }
    }

    /// Check the settings for values that would misbehave at solve time.
    pub fn validate(&self) -> Result<(), CologneError> {
        if let Some(t) = self.split_threshold {
            if t < 2 {
                return Err(CologneError::InvalidConfig(format!(
                    "split_threshold must be at least 2, got {t}"
                )));
            }
        }
        if let SolverMode::Lns(lns) = &self.mode {
            if !(lns.destroy_fraction.is_finite()
                && lns.destroy_fraction > 0.0
                && lns.destroy_fraction <= 1.0)
            {
                return Err(CologneError::InvalidConfig(format!(
                    "LNS destroy_fraction must be in (0, 1], got {}",
                    lns.destroy_fraction
                )));
            }
            if !(lns.repair_growth.is_finite() && lns.repair_growth >= 1.0) {
                return Err(CologneError::InvalidConfig(format!(
                    "LNS repair_growth must be >= 1, got {}",
                    lns.repair_growth
                )));
            }
            if lns.dive_node_limit == 0 {
                return Err(CologneError::InvalidConfig(
                    "LNS dive_node_limit must be positive".into(),
                ));
            }
        }
        Ok(())
    }

    /// Write the params-backed half of the view into `params`.
    pub(crate) fn apply_to_params(&self, params: &mut ProgramParams) {
        params.solver_max_time = self.max_time;
        params.solver_node_limit = self.node_limit;
        params.solver_branching = self.branching;
        params.solver_mode = self.mode.clone();
        params.solver_workers = self.workers;
        params.warm_start = self.warm_start;
        params.delta_grounding = self.delta_grounding;
    }
}

/// Builder for a [`Deployment`] — the one way to stand up Cologne, single
/// node or distributed.
#[derive(Debug, Clone)]
pub struct DeploymentBuilder {
    source: String,
    params: ProgramParams,
    topology: Option<Topology>,
    node_params: BTreeMap<NodeId, ProgramParams>,
    solver: Option<SolverSettings>,
    faults: Option<cologne_net::FaultPlan>,
}

impl DeploymentBuilder {
    /// Start a builder for the given Colog program source.
    pub fn new(source: &str) -> Self {
        DeploymentBuilder {
            source: source.to_string(),
            params: ProgramParams::new(),
            topology: None,
            node_params: BTreeMap::new(),
            solver: None,
            faults: None,
        }
    }

    /// Base program parameters for every node (defaults to
    /// [`ProgramParams::new`]).
    pub fn params(mut self, params: ProgramParams) -> Self {
        self.params = params;
        self
    }

    /// The network topology; one instance is created per topology node.
    /// Defaults to [`Topology::single`] (a centralized deployment).
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Replace the parameters of one node (the base parameters apply to
    /// every node without an override; [`DeploymentBuilder::solver`]
    /// settings apply on top of either).
    pub fn node_params(mut self, node: NodeId, params: ProgramParams) -> Self {
        self.node_params.insert(node, params);
        self
    }

    /// The merged solver-configuration view, validated at build time and
    /// applied to every node.
    pub fn solver(mut self, settings: SolverSettings) -> Self {
        self.solver = Some(settings);
        self
    }

    /// Install a seeded fault plan on the simulated network (loss,
    /// duplication, jitter, partitions, crash/rejoin — see
    /// `cologne_net::fault`). This also switches shipping to the
    /// at-least-once delivery layer, as
    /// [`DistributedCologne::set_fault_plan`] does.
    pub fn faults(mut self, plan: cologne_net::FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Compile the program on every topology node and wire the instances to
    /// the simulated network. Fails eagerly on an invalid configuration or a
    /// program that does not compile.
    pub fn build(self) -> Result<Deployment, CologneError> {
        let topology = self.topology.unwrap_or_else(Topology::single);
        if topology.num_nodes() == 0 {
            return Err(CologneError::InvalidConfig(
                "topology has no nodes; a deployment needs at least one".into(),
            ));
        }
        if let Some(settings) = &self.solver {
            settings.validate()?;
        }
        for node in self.node_params.keys() {
            if !topology.nodes().contains(&node.0) {
                return Err(CologneError::InvalidConfig(format!(
                    "node_params given for {node}, which is not in the topology"
                )));
            }
        }
        let mut instances = Vec::with_capacity(topology.num_nodes());
        for n in topology.nodes() {
            let node = NodeId(n);
            let mut params = self
                .node_params
                .get(&node)
                .cloned()
                .unwrap_or_else(|| self.params.clone());
            if let Some(settings) = &self.solver {
                settings.apply_to_params(&mut params);
            }
            let mut inst = CologneInstance::new(node, &self.source, params)?;
            if let Some(settings) = &self.solver {
                inst.set_search_shape(settings.value_choice, settings.split_threshold);
            }
            instances.push(inst);
        }
        let mut inner = DistributedCologne::assemble(topology, instances);
        if let Some(plan) = self.faults {
            inner.set_fault_plan(plan);
        }
        Ok(Deployment { inner })
    }
}

/// A built Cologne system: one instance per topology node over the simulated
/// network, with the single-node case being a one-node topology. Dereferences
/// to [`DistributedCologne`] for the full simulation surface.
pub struct Deployment {
    inner: DistributedCologne,
}

impl std::fmt::Debug for Deployment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Deployment")
            .field("nodes", &self.inner.nodes())
            .finish_non_exhaustive()
    }
}

impl Deref for Deployment {
    type Target = DistributedCologne;
    fn deref(&self) -> &DistributedCologne {
        &self.inner
    }
}

impl DerefMut for Deployment {
    fn deref_mut(&mut self) -> &mut DistributedCologne {
        &mut self.inner
    }
}

impl Deployment {
    /// Start a [`DeploymentBuilder`] for a program.
    pub fn builder(source: &str) -> DeploymentBuilder {
        DeploymentBuilder::new(source)
    }

    /// The sole node of a single-node deployment, or `None` when the
    /// deployment is distributed.
    pub fn single_node(&self) -> Option<NodeId> {
        let nodes = self.inner.nodes();
        match nodes.as_slice() {
            [only] => Some(*only),
            _ => None,
        }
    }

    /// The instance on `node`, or an error naming the missing node.
    fn instance_checked(&mut self, node: NodeId) -> Result<&mut CologneInstance, CologneError> {
        self.inner.instance_mut(node).ok_or_else(|| {
            CologneError::InvalidConfig(format!("deployment has no instance on {node}"))
        })
    }

    /// Schema-checked handle on one relation of one node.
    pub fn handle(
        &mut self,
        node: NodeId,
        relation: &str,
    ) -> Result<RelationHandle<'_>, CologneError> {
        self.instance_checked(node)?.relation(relation)
    }

    /// Schema-checked handle on one relation of a *single-node* deployment
    /// (errors on distributed deployments — name the node with
    /// [`Deployment::handle`] there).
    pub fn relation(&mut self, relation: &str) -> Result<RelationHandle<'_>, CologneError> {
        let node = self.single_node().ok_or_else(|| {
            CologneError::InvalidConfig(
                "relation() works on single-node deployments; use handle(node, name)".into(),
            )
        })?;
        self.handle(node, relation)
    }

    /// Run one node's regular rules to a fixpoint and ship any produced
    /// remote tuples into the network — the follow-up to a batch of handle
    /// writes.
    pub fn sync(&mut self, node: NodeId) {
        if let Some(inst) = self.inner.instance_mut(node) {
            let outgoing = inst.run_rules();
            self.inner.ship(node, outgoing);
        }
    }

    /// Invoke every node's solver in ascending node order and ship the
    /// outputs (see [`DistributedCologne::invoke_solvers`]).
    pub fn invoke(&mut self) -> Result<BTreeMap<NodeId, SolveReport>, CologneError> {
        self.inner.invoke_solvers()
    }

    /// [`Deployment::invoke`] with the per-node solves running concurrently
    /// (see [`DistributedCologne::invoke_solvers_parallel`]).
    pub fn invoke_parallel(&mut self) -> Result<BTreeMap<NodeId, SolveReport>, CologneError> {
        self.inner.invoke_solvers_parallel()
    }

    /// [`Deployment::invoke`] with a streaming [`SolveObserver`] threaded
    /// through every node's search, sequentially in ascending node order (so
    /// the event stream is deterministic under deterministic limits).
    pub fn invoke_with_observer(
        &mut self,
        observer: &mut dyn SolveObserver,
    ) -> Result<BTreeMap<NodeId, SolveReport>, CologneError> {
        self.inner.invoke_solvers_observed(observer)
    }

    /// Invoke the solver of one node without shipping its outputs (the
    /// per-node equivalent of [`CologneInstance::invoke_solver`]; the
    /// returned report keeps its `outgoing` tuples for the caller to route).
    pub fn invoke_at(&mut self, node: NodeId) -> Result<SolveReport, CologneError> {
        self.instance_checked(node)?.invoke_solver()
    }

    /// [`Deployment::invoke_at`] with a streaming [`SolveObserver`].
    pub fn invoke_at_with_observer(
        &mut self,
        node: NodeId,
        observer: &mut dyn SolveObserver,
    ) -> Result<SolveReport, CologneError> {
        self.instance_checked(node)?
            .invoke_solver_with_observer(observer)
    }

    /// Advance the simulated network until `limit`, delivering messages
    /// (alias of [`DistributedCologne::run_messages_until`]).
    pub fn tick(&mut self, limit: SimTime) -> u64 {
        self.inner.run_messages_until(limit)
    }

    /// Convenience: insert one validated fact at a node and immediately
    /// [`Deployment::sync`] it (run rules, ship remote tuples).
    pub fn insert(
        &mut self,
        node: NodeId,
        relation: &str,
        tuple: Tuple,
    ) -> Result<(), CologneError> {
        self.handle(node, relation)?.insert(tuple)?;
        self.sync(node);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cologne_colog::{LnsParams, VarDomain};
    use cologne_datalog::Value;
    use cologne_net::LinkProps;

    const ACLOUD: &str = r#"
        goal minimize C in hostStdevCpu(C).
        var assign(Vid,Hid,V) forall toAssign(Vid,Hid).
        r1 toAssign(Vid,Hid) <- vm(Vid,Cpu,Mem), host(Hid,Cpu2,Mem2).
        d1 hostCpu(Hid,SUM<C>) <- assign(Vid,Hid,V), vm(Vid,Cpu,Mem), C==V*Cpu.
        d2 hostStdevCpu(STDEV<C>) <- host(Hid,Cpu,Mem), hostCpu(Hid,Cpu2), C==Cpu+Cpu2.
        d3 assignCount(Vid,SUM<V>) <- assign(Vid,Hid,V).
        c1 assignCount(Vid,V) -> V==1.
    "#;

    const PING: &str = r#"
        r1 pong(@Y,X) <- ping(@X,Y).
    "#;

    #[test]
    fn single_node_deployment_solves() {
        let mut d = DeploymentBuilder::new(ACLOUD)
            .params(ProgramParams::new().with_var_domain("assign", VarDomain::BOOL))
            .build()
            .unwrap();
        let node = d.single_node().expect("one node");
        for (vid, cpu) in [(1, 40), (2, 20)] {
            d.relation("vm")
                .unwrap()
                .insert(vec![Value::Int(vid), Value::Int(cpu), Value::Int(1)])
                .unwrap();
        }
        for hid in [10, 11] {
            d.relation("host")
                .unwrap()
                .insert(vec![Value::Int(hid), Value::Int(0), Value::Int(0)])
                .unwrap();
        }
        let report = d.invoke_at(node).unwrap();
        assert!(report.feasible);
        assert_eq!(report.table("assign").len(), 4);
        // handle() with the explicit node reaches the same relation
        assert_eq!(d.handle(node, "vm").unwrap().len(), 2);
        assert!(d.relation("bogus").is_err());
    }

    #[test]
    fn distributed_deployment_ships_messages() {
        let mut d = DeploymentBuilder::new(PING)
            .topology(Topology::line(2, LinkProps::default()))
            .build()
            .unwrap();
        assert_eq!(d.num_instances(), 2);
        assert!(d.single_node().is_none());
        assert!(d.relation("ping").is_err(), "multi-node needs handle()");
        d.insert(
            NodeId(0),
            "ping",
            vec![Value::Addr(NodeId(0)), Value::Addr(NodeId(1))],
        )
        .unwrap();
        let handled = d.tick(SimTime::from_secs(5));
        assert_eq!(handled, 1);
        assert!(d.instance(NodeId(1)).unwrap().contains(
            "pong",
            &vec![Value::Addr(NodeId(1)), Value::Addr(NodeId(0))]
        ));
    }

    #[test]
    fn builder_validates_settings_and_topology() {
        let err = DeploymentBuilder::new(ACLOUD)
            .solver(SolverSettings {
                split_threshold: Some(1),
                ..Default::default()
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, CologneError::InvalidConfig(_)));

        let err = DeploymentBuilder::new(ACLOUD)
            .solver(SolverSettings {
                mode: SolverMode::Lns(LnsParams {
                    destroy_fraction: 1.5,
                    ..Default::default()
                }),
                ..Default::default()
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, CologneError::InvalidConfig(_)));

        let err = DeploymentBuilder::new(ACLOUD)
            .topology(Topology::new())
            .build()
            .unwrap_err();
        assert!(matches!(err, CologneError::InvalidConfig(_)));

        let err = DeploymentBuilder::new(ACLOUD)
            .node_params(NodeId(7), ProgramParams::new())
            .build()
            .unwrap_err();
        assert!(matches!(err, CologneError::InvalidConfig(_)));

        // a broken program fails at build
        assert!(DeploymentBuilder::new("goal bogus").build().is_err());
    }

    #[test]
    fn solver_settings_apply_to_every_node() {
        let settings = SolverSettings {
            node_limit: Some(1234),
            max_time: None,
            branching: SolverBranching::FirstFail,
            value_choice: ValueChoice::Max,
            split_threshold: None,
            workers: std::num::NonZeroUsize::new(2),
            ..Default::default()
        };
        let d = DeploymentBuilder::new(ACLOUD)
            .topology(Topology::line(2, LinkProps::default()))
            .solver(settings.clone())
            .build()
            .unwrap();
        for node in d.nodes() {
            let inst = d.instance(node).unwrap();
            assert_eq!(inst.params().solver_node_limit, Some(1234));
            assert_eq!(inst.params().solver_max_time, None);
            assert_eq!(inst.solver_settings(), settings);
        }
    }

    #[test]
    fn per_node_params_override_base() {
        let base = ProgramParams::new().with_var_domain("assign", VarDomain::BOOL);
        let special = base.clone().with_constant("tag", 7);
        let d = DeploymentBuilder::new(ACLOUD)
            .topology(Topology::line(2, LinkProps::default()))
            .params(base)
            .node_params(NodeId(1), special)
            .build()
            .unwrap();
        assert_eq!(
            d.instance(NodeId(0)).unwrap().params().constant("tag"),
            None
        );
        assert_eq!(
            d.instance(NodeId(1)).unwrap().params().constant("tag"),
            Some(7)
        );
    }
}
