//! The unified deployment surface: [`SolverSettings`], [`DeploymentBuilder`]
//! and [`Deployment`].
//!
//! Historically, standing up a Cologne system meant three different dances:
//! `CologneInstance::new` for a single node, per-node constructor plumbing
//! for a simulated network, and a `params_mut`-then-invalidate backdoor pair
//! for solver tuning split across two structures. The
//! [`DeploymentBuilder`] subsumes all of them: one builder takes the program
//! source, the base [`ProgramParams`], a [`Topology`] (defaulting to
//! [`Topology::single`]), optional per-node parameter overrides and one
//! validated [`SolverSettings`] view — and produces a [`Deployment`] that
//! owns the single-node and distributed cases behind the same
//! `tick`/`invoke`/`handle` API.
//!
//! Solves go through the typed [`SolveRequest`] → [`SolveResponse`] entry
//! point ([`Deployment::solve`] / [`Deployment::solve_streaming`]), the same
//! request shape the `cologne-serve` wire protocol carries. Every
//! simulation-surface method a deployment needs is an explicit named
//! forwarder (`run_until`, `ship`, `delivery_stats`, ...), and anything more
//! exotic goes through [`Deployment::network`] /
//! [`Deployment::network_mut`] so the dependency is visible at the call
//! site. (The historical `Deref<Target = DistributedCologne>` escape hatch
//! and the `invoke_*_with_observer` spellings have been removed; see the
//! README migration table.)

use std::collections::BTreeMap;
use std::time::Duration;

use cologne_colog::{ProgramParams, SolverBoundMode, SolverBranching, SolverMode};
use cologne_datalog::{NodeId, Tuple};
use cologne_net::{NodeTraffic, SimTime, Topology};
use cologne_solver::ValueChoice;

use crate::distributed::{CrashEvent, DeliveryStats, DistributedCologne, TimerOutcome};
use crate::error::CologneError;
use crate::handle::RelationHandle;
use crate::instance::{CologneInstance, SolveReport};
use crate::solve_api::{
    BufferSink, EventOptions, EventSink, SinkObserver, SolveRequest, SolveResponse, SolveTarget,
};
use crate::stats::{NodeStats, StatsSnapshot};

/// The merged, validated solver-configuration view.
///
/// [`ProgramParams`] carries the compiler-facing solver knobs (limits,
/// branching, mode, re-optimization toggles) while the search *shape*
/// (value choice, split threshold) historically hid behind the
/// `search_config_mut` backdoor. This view holds both halves; apply it with
/// [`DeploymentBuilder::solver`] or
/// [`CologneInstance::apply_solver_settings`].
#[derive(Debug, Clone, PartialEq)]
pub struct SolverSettings {
    /// Wall-clock budget per COP execution (the paper's `SOLVER_MAX_TIME`).
    pub max_time: Option<Duration>,
    /// Node budget per COP execution (the deterministic alternative).
    pub node_limit: Option<u64>,
    /// Variable-selection heuristic.
    pub branching: SolverBranching,
    /// Value-selection heuristic.
    pub value_choice: ValueChoice,
    /// Domain size above which value enumeration switches to bisection
    /// (`None` = never bisect implicitly).
    pub split_threshold: Option<u64>,
    /// Exact branch-and-bound or LNS.
    pub mode: SolverMode,
    /// Worker threads per COP search (`None` = sequential). Parallel runs
    /// return the same result as the sequential engines — see the solver's
    /// `parallel` module for the determinism contract.
    pub workers: Option<std::num::NonZeroUsize>,
    /// Dual-bound engine for COP searches (`Off` = no bound, the default).
    pub bound_mode: SolverBoundMode,
    /// Relative optimality-gap threshold for early termination (`None` =
    /// never stop on the gap). Must be finite and non-negative.
    pub gap_limit: Option<f64>,
    /// Carry the previous best assignment into the next solve.
    pub warm_start: bool,
    /// Consult the engine's delta summary when grounding.
    pub delta_grounding: bool,
}

impl Default for SolverSettings {
    fn default() -> Self {
        let params = ProgramParams::default();
        let search = cologne_solver::SearchConfig::default();
        SolverSettings {
            max_time: params.solver_max_time,
            node_limit: params.solver_node_limit,
            branching: params.solver_branching,
            value_choice: search.value_choice,
            split_threshold: search.split_threshold,
            mode: params.solver_mode,
            workers: params.solver_workers,
            bound_mode: params.solver_bound_mode,
            gap_limit: params.solver_gap_limit,
            warm_start: params.warm_start,
            delta_grounding: params.delta_grounding,
        }
    }
}

impl SolverSettings {
    /// The settings currently in effect on an instance (params + search
    /// config merged back into one view).
    pub(crate) fn of_instance(
        params: &ProgramParams,
        search: &cologne_solver::SearchConfig,
    ) -> SolverSettings {
        SolverSettings {
            max_time: params.solver_max_time,
            node_limit: params.solver_node_limit,
            branching: params.solver_branching,
            value_choice: search.value_choice,
            split_threshold: search.split_threshold,
            mode: params.solver_mode.clone(),
            workers: params.solver_workers,
            bound_mode: params.solver_bound_mode,
            gap_limit: params.solver_gap_limit,
            warm_start: params.warm_start,
            delta_grounding: params.delta_grounding,
        }
    }

    /// Check the settings for values that would misbehave at solve time.
    pub fn validate(&self) -> Result<(), CologneError> {
        if let Some(t) = self.split_threshold {
            if t < 2 {
                return Err(CologneError::InvalidConfig(format!(
                    "split_threshold must be at least 2, got {t}"
                )));
            }
        }
        if let SolverMode::Lns(lns) = &self.mode {
            if !(lns.destroy_fraction.is_finite()
                && lns.destroy_fraction > 0.0
                && lns.destroy_fraction <= 1.0)
            {
                return Err(CologneError::InvalidConfig(format!(
                    "LNS destroy_fraction must be in (0, 1], got {}",
                    lns.destroy_fraction
                )));
            }
            if !(lns.repair_growth.is_finite() && lns.repair_growth >= 1.0) {
                return Err(CologneError::InvalidConfig(format!(
                    "LNS repair_growth must be >= 1, got {}",
                    lns.repair_growth
                )));
            }
            if lns.dive_node_limit == 0 {
                return Err(CologneError::InvalidConfig(
                    "LNS dive_node_limit must be positive".into(),
                ));
            }
        }
        if let Some(gap) = self.gap_limit {
            if !(gap.is_finite() && gap >= 0.0) {
                return Err(CologneError::InvalidConfig(format!(
                    "gap_limit must be finite and non-negative, got {gap}"
                )));
            }
        }
        Ok(())
    }

    /// Write the params-backed half of the view into `params`.
    pub(crate) fn apply_to_params(&self, params: &mut ProgramParams) {
        params.solver_max_time = self.max_time;
        params.solver_node_limit = self.node_limit;
        params.solver_branching = self.branching;
        params.solver_mode = self.mode.clone();
        params.solver_workers = self.workers;
        params.solver_bound_mode = self.bound_mode;
        params.solver_gap_limit = self.gap_limit;
        params.warm_start = self.warm_start;
        params.delta_grounding = self.delta_grounding;
    }
}

/// Builder for a [`Deployment`] — the one way to stand up Cologne, single
/// node or distributed.
#[derive(Debug, Clone)]
pub struct DeploymentBuilder {
    source: String,
    params: ProgramParams,
    topology: Option<Topology>,
    node_params: BTreeMap<NodeId, ProgramParams>,
    solver: Option<SolverSettings>,
    faults: Option<cologne_net::FaultPlan>,
}

impl DeploymentBuilder {
    /// Start a builder for the given Colog program source.
    pub fn new(source: &str) -> Self {
        DeploymentBuilder {
            source: source.to_string(),
            params: ProgramParams::new(),
            topology: None,
            node_params: BTreeMap::new(),
            solver: None,
            faults: None,
        }
    }

    /// Base program parameters for every node (defaults to
    /// [`ProgramParams::new`]).
    pub fn params(mut self, params: ProgramParams) -> Self {
        self.params = params;
        self
    }

    /// The network topology; one instance is created per topology node.
    /// Defaults to [`Topology::single`] (a centralized deployment).
    pub fn topology(mut self, topology: Topology) -> Self {
        self.topology = Some(topology);
        self
    }

    /// Replace the parameters of one node (the base parameters apply to
    /// every node without an override; [`DeploymentBuilder::solver`]
    /// settings apply on top of either).
    pub fn node_params(mut self, node: NodeId, params: ProgramParams) -> Self {
        self.node_params.insert(node, params);
        self
    }

    /// The merged solver-configuration view, validated at build time and
    /// applied to every node.
    pub fn solver(mut self, settings: SolverSettings) -> Self {
        self.solver = Some(settings);
        self
    }

    /// Install a seeded fault plan on the simulated network (loss,
    /// duplication, jitter, partitions, crash/rejoin — see
    /// `cologne_net::fault`). This also switches shipping to the
    /// at-least-once delivery layer, as
    /// [`DistributedCologne::set_fault_plan`] does.
    pub fn faults(mut self, plan: cologne_net::FaultPlan) -> Self {
        self.faults = Some(plan);
        self
    }

    /// Compile the program on every topology node and wire the instances to
    /// the simulated network. Fails eagerly on an invalid configuration or a
    /// program that does not compile.
    pub fn build(self) -> Result<Deployment, CologneError> {
        let topology = self.topology.unwrap_or_else(Topology::single);
        if topology.num_nodes() == 0 {
            return Err(CologneError::InvalidConfig(
                "topology has no nodes; a deployment needs at least one".into(),
            ));
        }
        if let Some(settings) = &self.solver {
            settings.validate()?;
        }
        for node in self.node_params.keys() {
            if !topology.nodes().contains(&node.0) {
                return Err(CologneError::InvalidConfig(format!(
                    "node_params given for {node}, which is not in the topology"
                )));
            }
        }
        let mut instances = Vec::with_capacity(topology.num_nodes());
        for n in topology.nodes() {
            let node = NodeId(n);
            let mut params = self
                .node_params
                .get(&node)
                .cloned()
                .unwrap_or_else(|| self.params.clone());
            if let Some(settings) = &self.solver {
                settings.apply_to_params(&mut params);
            }
            let mut inst = CologneInstance::new(node, &self.source, params)?;
            if let Some(settings) = &self.solver {
                inst.set_search_shape(settings.value_choice, settings.split_threshold);
            }
            instances.push(inst);
        }
        let mut inner = DistributedCologne::assemble(topology, instances);
        if let Some(plan) = self.faults {
            inner.set_fault_plan(plan);
        }
        Ok(Deployment { inner })
    }
}

/// A built Cologne system: one instance per topology node over the simulated
/// network, with the single-node case being a one-node topology.
///
/// The full simulation surface is exposed through named forwarders
/// ([`Deployment::run_until`], [`Deployment::ship`],
/// [`Deployment::delivery_stats`], ...) and, for anything not forwarded,
/// through [`Deployment::network`] / [`Deployment::network_mut`].
pub struct Deployment {
    inner: DistributedCologne,
}

impl std::fmt::Debug for Deployment {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Deployment")
            .field("nodes", &self.inner.nodes())
            .finish_non_exhaustive()
    }
}

impl Deployment {
    /// Start a [`DeploymentBuilder`] for a program.
    pub fn builder(source: &str) -> DeploymentBuilder {
        DeploymentBuilder::new(source)
    }

    /// The sole node of a single-node deployment, or `None` when the
    /// deployment is distributed.
    pub fn single_node(&self) -> Option<NodeId> {
        let nodes = self.inner.nodes();
        match nodes.as_slice() {
            [only] => Some(*only),
            _ => None,
        }
    }

    /// The instance on `node`, or an error naming the missing node.
    fn instance_checked(&mut self, node: NodeId) -> Result<&mut CologneInstance, CologneError> {
        self.inner.instance_mut(node).ok_or_else(|| {
            CologneError::InvalidConfig(format!("deployment has no instance on {node}"))
        })
    }

    /// Schema-checked handle on one relation of one node.
    pub fn handle(
        &mut self,
        node: NodeId,
        relation: &str,
    ) -> Result<RelationHandle<'_>, CologneError> {
        self.instance_checked(node)?.relation(relation)
    }

    /// Schema-checked handle on one relation of a *single-node* deployment
    /// (errors on distributed deployments — name the node with
    /// [`Deployment::handle`] there).
    pub fn relation(&mut self, relation: &str) -> Result<RelationHandle<'_>, CologneError> {
        let node = self.single_node().ok_or_else(|| {
            CologneError::InvalidConfig(
                "relation() works on single-node deployments; use handle(node, name)".into(),
            )
        })?;
        self.handle(node, relation)
    }

    /// Run one node's regular rules to a fixpoint and ship any produced
    /// remote tuples into the network — the follow-up to a batch of handle
    /// writes.
    pub fn sync(&mut self, node: NodeId) {
        if let Some(inst) = self.inner.instance_mut(node) {
            let outgoing = inst.run_rules();
            self.inner.ship(node, outgoing);
        }
    }

    /// Execute one typed [`SolveRequest`], buffering any requested events
    /// into the returned [`SolveResponse`] — the single solve entry point,
    /// used identically in-process and by the `cologne-serve` wire protocol.
    ///
    /// All-nodes targets solve in ascending node order and ship solver
    /// outputs into the network afterwards (in node order); single-node
    /// targets keep their `outgoing` tuples in the report for the caller to
    /// route. Under deterministic limits (node budgets rather than
    /// wall-clock) the response is byte-identical across runs once
    /// normalized with [`SolveResponse::normalized`].
    pub fn solve(&mut self, request: &SolveRequest) -> Result<SolveResponse, CologneError> {
        request.validate()?;
        let mut events = Vec::new();
        let mut dropped = 0u64;
        let reports = match request.events {
            None => self.solve_plain(request)?,
            Some(opts) => {
                let mut sink = BufferSink {
                    events: &mut events,
                    capacity: opts.capacity,
                    dropped: &mut dropped,
                };
                self.solve_observed(request, opts, &mut sink)?
            }
        };
        Ok(SolveResponse {
            reports,
            events,
            dropped_events: dropped,
        })
    }

    /// [`Deployment::solve`] with events pushed to `sink` as they happen
    /// instead of buffered (the response's `events` stays empty). The sink
    /// can return `false` to cancel the remaining search cooperatively —
    /// this is how the server cancels a solve whose client disconnected.
    /// Requests without event options run unobserved, exactly like
    /// [`Deployment::solve`].
    pub fn solve_streaming(
        &mut self,
        request: &SolveRequest,
        sink: &mut dyn EventSink,
    ) -> Result<SolveResponse, CologneError> {
        request.validate()?;
        let reports = match request.events {
            None => self.solve_plain(request)?,
            Some(opts) => self.solve_observed(request, opts, sink)?,
        };
        Ok(SolveResponse {
            reports,
            events: Vec::new(),
            dropped_events: 0,
        })
    }

    /// The unobserved dispatch: plain sequential, parallel, or single-node.
    fn solve_plain(
        &mut self,
        request: &SolveRequest,
    ) -> Result<BTreeMap<NodeId, SolveReport>, CologneError> {
        match request.target {
            SolveTarget::All if request.parallel => self.inner.invoke_solvers_parallel(),
            SolveTarget::All => self.inner.invoke_solvers(),
            SolveTarget::Node(node) => {
                let report = self.instance_checked(node)?.invoke_solver()?;
                Ok(BTreeMap::from([(node, report)]))
            }
        }
    }

    /// The observed dispatch: thread a per-node [`SinkObserver`] through
    /// every targeted search, sharing the incumbent counter and cancel flag
    /// so `cancel_after_incumbents` counts globally and a cancellation keeps
    /// cancelling later nodes — then finish exactly like the unobserved
    /// paths (first error in node order aborts shipping, otherwise outgoing
    /// tuples ship in ascending node order).
    fn solve_observed(
        &mut self,
        request: &SolveRequest,
        opts: EventOptions,
        sink: &mut dyn EventSink,
    ) -> Result<BTreeMap<NodeId, SolveReport>, CologneError> {
        let mut incumbents = 0u64;
        let mut cancelled = false;
        match request.target {
            SolveTarget::Node(node) => {
                let mut observer = SinkObserver {
                    node,
                    sink,
                    incumbents: &mut incumbents,
                    cancel_after: opts.cancel_after_incumbents,
                    cancelled: &mut cancelled,
                };
                let report = self
                    .instance_checked(node)?
                    .invoke_solver_with_observer(&mut observer)?;
                Ok(BTreeMap::from([(node, report)]))
            }
            SolveTarget::All => {
                let mut results = Vec::with_capacity(self.inner.num_instances());
                for node in self.inner.nodes() {
                    let mut observer = SinkObserver {
                        node,
                        sink,
                        incumbents: &mut incumbents,
                        cancel_after: opts.cancel_after_incumbents,
                        cancelled: &mut cancelled,
                    };
                    let inst = self
                        .inner
                        .instance_mut(node)
                        .expect("nodes() lists only existing instances");
                    results.push((node, inst.invoke_solver_with_observer(&mut observer)));
                }
                let mut reports = BTreeMap::new();
                for (node, result) in results {
                    reports.insert(node, result?);
                }
                for (node, report) in reports.iter_mut() {
                    let outgoing = std::mem::take(&mut report.outgoing);
                    self.inner.ship(*node, outgoing);
                }
                Ok(reports)
            }
        }
    }

    /// Every counter of the deployment in one serializable value: per-node
    /// pipeline/engine/search statistics plus the network-wide delivery
    /// counters. This is the snapshot the `cologne-serve` stats frame ships
    /// per tenant.
    pub fn stats(&self) -> StatsSnapshot {
        let mut nodes = Vec::with_capacity(self.inner.num_instances());
        for node in self.inner.nodes() {
            let inst = self
                .inner
                .instance(node)
                .expect("nodes() lists only existing instances");
            nodes.push(NodeStats {
                node,
                solver_invocations: inst.solver_invocations(),
                pipeline: inst.pipeline_stats(),
                engine: inst.engine_stats().clone(),
                search_total: inst.cumulative_solver_stats().clone(),
                last_search: inst.last_solver_stats().cloned(),
            });
        }
        StatsSnapshot {
            nodes,
            delivery: self.inner.delivery_stats(),
            rejected_remote_tuples: self.inner.rejected_remote_tuples(),
        }
    }

    /// Invoke every node's solver in ascending node order and ship the
    /// outputs — shorthand for [`Deployment::solve`] with
    /// [`SolveRequest::all`].
    pub fn invoke(&mut self) -> Result<BTreeMap<NodeId, SolveReport>, CologneError> {
        self.inner.invoke_solvers()
    }

    /// [`Deployment::invoke`] with the per-node solves running concurrently
    /// — shorthand for [`SolveRequest::all`]`.parallel()`.
    pub fn invoke_parallel(&mut self) -> Result<BTreeMap<NodeId, SolveReport>, CologneError> {
        self.inner.invoke_solvers_parallel()
    }

    /// Invoke the solver of one node without shipping its outputs (the
    /// per-node equivalent of [`CologneInstance::invoke_solver`]; the
    /// returned report keeps its `outgoing` tuples for the caller to route)
    /// — shorthand for [`Deployment::solve`] with [`SolveRequest::at`].
    pub fn invoke_at(&mut self, node: NodeId) -> Result<SolveReport, CologneError> {
        self.instance_checked(node)?.invoke_solver()
    }

    /// Advance the simulated network until `limit`, delivering messages
    /// (alias of [`DistributedCologne::run_messages_until`]).
    pub fn tick(&mut self, limit: SimTime) -> u64 {
        self.inner.run_messages_until(limit)
    }

    /// Convenience: insert one validated fact at a node and immediately
    /// [`Deployment::sync`] it (run rules, ship remote tuples).
    pub fn insert(
        &mut self,
        node: NodeId,
        relation: &str,
        tuple: Tuple,
    ) -> Result<(), CologneError> {
        self.handle(node, relation)?.insert(tuple)?;
        self.sync(node);
        Ok(())
    }

    // ----- named simulation-surface forwarders ------------------------------
    //
    // Explicit inherent forwarders onto the simulated network, so the
    // dependency is visible at every call site. Anything not forwarded here
    // is reachable through `network()` / `network_mut()`.

    /// The underlying simulated network and instance map.
    pub fn network(&self) -> &DistributedCologne {
        &self.inner
    }

    /// Mutable access to the underlying simulated network.
    pub fn network_mut(&mut self) -> &mut DistributedCologne {
        &mut self.inner
    }

    /// Number of instances (one per topology node).
    pub fn num_instances(&self) -> usize {
        self.inner.num_instances()
    }

    /// The instance on `node`, if any.
    pub fn instance(&self, node: NodeId) -> Option<&CologneInstance> {
        self.inner.instance(node)
    }

    /// Mutable access to the instance on `node`, if any.
    pub fn instance_mut(&mut self, node: NodeId) -> Option<&mut CologneInstance> {
        self.inner.instance_mut(node)
    }

    /// Every node, in ascending order.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.inner.nodes()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.inner.now()
    }

    /// Per-node traffic accounting.
    pub fn traffic(&self, node: NodeId) -> NodeTraffic {
        self.inner.traffic(node)
    }

    /// Mean per-node communication overhead (Fig. 5's metric).
    pub fn per_node_overhead_kbps(&self) -> f64 {
        self.inner.per_node_overhead_kbps()
    }

    /// The network topology.
    pub fn topology(&self) -> &Topology {
        self.inner.topology()
    }

    /// Remote tuples rejected at reception by the destination's schema check.
    pub fn rejected_remote_tuples(&self) -> u64 {
        self.inner.rejected_remote_tuples()
    }

    /// Switch shipping to the at-least-once delivery layer.
    pub fn enable_reliable_delivery(&mut self) {
        self.inner.enable_reliable_delivery()
    }

    /// Install a seeded fault plan (also enables reliable delivery).
    pub fn set_fault_plan(&mut self, plan: cologne_net::FaultPlan) {
        self.inner.set_fault_plan(plan)
    }

    /// The installed fault plan, if any.
    pub fn fault_plan(&self) -> Option<&cologne_net::FaultPlan> {
        self.inner.fault_plan()
    }

    /// Counters of the reliable-delivery layer.
    pub fn delivery_stats(&self) -> DeliveryStats {
        self.inner.delivery_stats()
    }

    /// Packets currently awaiting acknowledgement.
    pub fn reliable_in_flight(&self) -> u64 {
        self.inner.reliable_in_flight()
    }

    /// True while `node` is crashed under the fault plan.
    pub fn is_down(&self, node: NodeId) -> bool {
        self.inner.is_down(node)
    }

    /// Drain the crash/rejoin event log.
    pub fn take_crash_log(&mut self) -> Vec<CrashEvent> {
        self.inner.take_crash_log()
    }

    /// Run the network until `deadline` or quiescence; true on quiescence.
    pub fn settle(&mut self, deadline: SimTime) -> bool {
        self.inner.settle(deadline)
    }

    /// Wait for a crashed node to rejoin and resync, up to `deadline`.
    pub fn await_node(&mut self, node: NodeId, deadline: SimTime) -> bool {
        self.inner.await_node(node, deadline)
    }

    /// Schedule an application timer on `node`.
    pub fn schedule_timer(&mut self, node: NodeId, delay: SimTime, tag: u64) {
        self.inner.schedule_timer(node, delay, tag)
    }

    /// Ship located tuples from `from` into the network.
    pub fn ship(&mut self, from: NodeId, tuples: Vec<cologne_datalog::RemoteTuple>) {
        self.inner.ship(from, tuples)
    }

    /// Run the event loop until `limit`, delivering messages and invoking
    /// `on_timer` for timer events; returns the number of events processed.
    pub fn run_until<F>(&mut self, limit: SimTime, on_timer: F) -> u64
    where
        F: FnMut(&mut CologneInstance, u64) -> TimerOutcome,
    {
        self.inner.run_until(limit, on_timer)
    }

    /// Run the event loop until `limit`, delivering messages only.
    pub fn run_messages_until(&mut self, limit: SimTime) -> u64 {
        self.inner.run_messages_until(limit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cologne_colog::{LnsParams, VarDomain};
    use cologne_datalog::Value;
    use cologne_net::LinkProps;

    const ACLOUD: &str = r#"
        goal minimize C in hostStdevCpu(C).
        var assign(Vid,Hid,V) forall toAssign(Vid,Hid).
        r1 toAssign(Vid,Hid) <- vm(Vid,Cpu,Mem), host(Hid,Cpu2,Mem2).
        d1 hostCpu(Hid,SUM<C>) <- assign(Vid,Hid,V), vm(Vid,Cpu,Mem), C==V*Cpu.
        d2 hostStdevCpu(STDEV<C>) <- host(Hid,Cpu,Mem), hostCpu(Hid,Cpu2), C==Cpu+Cpu2.
        d3 assignCount(Vid,SUM<V>) <- assign(Vid,Hid,V).
        c1 assignCount(Vid,V) -> V==1.
    "#;

    const PING: &str = r#"
        r1 pong(@Y,X) <- ping(@X,Y).
    "#;

    #[test]
    fn single_node_deployment_solves() {
        let mut d = DeploymentBuilder::new(ACLOUD)
            .params(ProgramParams::new().with_var_domain("assign", VarDomain::BOOL))
            .build()
            .unwrap();
        let node = d.single_node().expect("one node");
        for (vid, cpu) in [(1, 40), (2, 20)] {
            d.relation("vm")
                .unwrap()
                .insert(vec![Value::Int(vid), Value::Int(cpu), Value::Int(1)])
                .unwrap();
        }
        for hid in [10, 11] {
            d.relation("host")
                .unwrap()
                .insert(vec![Value::Int(hid), Value::Int(0), Value::Int(0)])
                .unwrap();
        }
        let report = d.invoke_at(node).unwrap();
        assert!(report.feasible);
        assert_eq!(report.table("assign").len(), 4);
        // handle() with the explicit node reaches the same relation
        assert_eq!(d.handle(node, "vm").unwrap().len(), 2);
        assert!(d.relation("bogus").is_err());
    }

    #[test]
    fn distributed_deployment_ships_messages() {
        let mut d = DeploymentBuilder::new(PING)
            .topology(Topology::line(2, LinkProps::default()))
            .build()
            .unwrap();
        assert_eq!(d.num_instances(), 2);
        assert!(d.single_node().is_none());
        assert!(d.relation("ping").is_err(), "multi-node needs handle()");
        d.insert(
            NodeId(0),
            "ping",
            vec![Value::Addr(NodeId(0)), Value::Addr(NodeId(1))],
        )
        .unwrap();
        let handled = d.tick(SimTime::from_secs(5));
        assert_eq!(handled, 1);
        assert!(d.instance(NodeId(1)).unwrap().contains(
            "pong",
            &vec![Value::Addr(NodeId(1)), Value::Addr(NodeId(0))]
        ));
    }

    #[test]
    fn builder_validates_settings_and_topology() {
        let err = DeploymentBuilder::new(ACLOUD)
            .solver(SolverSettings {
                split_threshold: Some(1),
                ..Default::default()
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, CologneError::InvalidConfig(_)));

        let err = DeploymentBuilder::new(ACLOUD)
            .solver(SolverSettings {
                mode: SolverMode::Lns(LnsParams {
                    destroy_fraction: 1.5,
                    ..Default::default()
                }),
                ..Default::default()
            })
            .build()
            .unwrap_err();
        assert!(matches!(err, CologneError::InvalidConfig(_)));

        let err = DeploymentBuilder::new(ACLOUD)
            .topology(Topology::new())
            .build()
            .unwrap_err();
        assert!(matches!(err, CologneError::InvalidConfig(_)));

        let err = DeploymentBuilder::new(ACLOUD)
            .node_params(NodeId(7), ProgramParams::new())
            .build()
            .unwrap_err();
        assert!(matches!(err, CologneError::InvalidConfig(_)));

        // a broken program fails at build
        assert!(DeploymentBuilder::new("goal bogus").build().is_err());
    }

    #[test]
    fn solver_settings_apply_to_every_node() {
        let settings = SolverSettings {
            node_limit: Some(1234),
            max_time: None,
            branching: SolverBranching::FirstFail,
            value_choice: ValueChoice::Max,
            split_threshold: None,
            workers: std::num::NonZeroUsize::new(2),
            ..Default::default()
        };
        let d = DeploymentBuilder::new(ACLOUD)
            .topology(Topology::line(2, LinkProps::default()))
            .solver(settings.clone())
            .build()
            .unwrap();
        for node in d.nodes() {
            let inst = d.instance(node).unwrap();
            assert_eq!(inst.params().solver_node_limit, Some(1234));
            assert_eq!(inst.params().solver_max_time, None);
            assert_eq!(inst.solver_settings(), settings);
        }
    }

    #[test]
    fn per_node_params_override_base() {
        let base = ProgramParams::new().with_var_domain("assign", VarDomain::BOOL);
        let special = base.clone().with_constant("tag", 7);
        let d = DeploymentBuilder::new(ACLOUD)
            .topology(Topology::line(2, LinkProps::default()))
            .params(base)
            .node_params(NodeId(1), special)
            .build()
            .unwrap();
        assert_eq!(
            d.instance(NodeId(0)).unwrap().params().constant("tag"),
            None
        );
        assert_eq!(
            d.instance(NodeId(1)).unwrap().params().constant("tag"),
            Some(7)
        );
    }
}
