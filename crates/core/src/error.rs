//! Unified error type for the Cologne runtime.

use cologne_colog::{AnalysisError, LocalizeError, ParseError};

/// Errors surfaced while compiling or executing a Colog program.
#[derive(Debug, Clone, PartialEq)]
pub enum CologneError {
    /// The source text failed to parse.
    Parse(ParseError),
    /// The program failed static analysis.
    Analysis(AnalysisError),
    /// A distributed rule could not be localized.
    Localize(LocalizeError),
    /// A named parameter used by the program has no value in
    /// [`cologne_colog::ProgramParams`].
    MissingParameter(String),
    /// A rule referenced a variable that is not bound at the point of use.
    UnboundVariable { rule: String, variable: String },
    /// An expression form is not supported by the Colog→COP translation
    /// (e.g. division by a solver variable).
    UnsupportedExpression { rule: String, detail: String },
    /// The goal declaration references a relation that the solver rules never
    /// derive.
    GoalRelationEmpty(String),
    /// A program without a goal was asked to run constraint optimization.
    NoGoal,
    /// A relation name that the compiled program never mentions — almost
    /// always a typo. Carries a did-you-mean suggestion when a known
    /// relation has a similar name.
    UnknownRelation {
        /// The unrecognized relation name.
        relation: String,
        /// A known relation with a similar name, if any.
        suggestion: Option<String>,
    },
    /// A tuple does not match the relation's schema (wrong arity, or a value
    /// of the wrong kind in a typed column).
    SchemaMismatch {
        /// The relation being written.
        relation: String,
        /// Human-readable description of the violation.
        detail: String,
    },
    /// A configuration value failed validation (e.g. an out-of-range LNS
    /// destroy fraction in [`crate::SolverSettings`]).
    InvalidConfig(String),
}

impl std::fmt::Display for CologneError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CologneError::Parse(e) => write!(f, "{e}"),
            CologneError::Analysis(e) => write!(f, "{e}"),
            CologneError::Localize(e) => write!(f, "{e}"),
            CologneError::MissingParameter(p) => {
                write!(
                    f,
                    "program parameter '{p}' has no value; set it in ProgramParams"
                )
            }
            CologneError::UnboundVariable { rule, variable } => {
                write!(f, "rule {rule}: variable {variable} is not bound")
            }
            CologneError::UnsupportedExpression { rule, detail } => {
                write!(f, "rule {rule}: unsupported expression: {detail}")
            }
            CologneError::GoalRelationEmpty(rel) => {
                write!(f, "goal relation {rel} is empty after grounding")
            }
            CologneError::NoGoal => write!(f, "program has no goal declaration"),
            CologneError::UnknownRelation {
                relation,
                suggestion,
            } => {
                write!(f, "unknown relation '{relation}'")?;
                if let Some(s) = suggestion {
                    write!(f, "; did you mean '{s}'?")?;
                }
                Ok(())
            }
            CologneError::SchemaMismatch { relation, detail } => {
                write!(f, "schema mismatch on relation '{relation}': {detail}")
            }
            CologneError::InvalidConfig(detail) => {
                write!(f, "invalid configuration: {detail}")
            }
        }
    }
}

impl std::error::Error for CologneError {}

impl From<ParseError> for CologneError {
    fn from(e: ParseError) -> Self {
        CologneError::Parse(e)
    }
}

impl From<AnalysisError> for CologneError {
    fn from(e: AnalysisError) -> Self {
        CologneError::Analysis(e)
    }
}

impl From<LocalizeError> for CologneError {
    fn from(e: LocalizeError) -> Self {
        CologneError::Localize(e)
    }
}

impl From<cologne_datalog::IngestError> for CologneError {
    fn from(e: cologne_datalog::IngestError) -> Self {
        match e {
            cologne_datalog::IngestError::UnknownRelation {
                relation,
                suggestion,
            } => CologneError::UnknownRelation {
                relation,
                suggestion,
            },
            cologne_datalog::IngestError::Schema(s) => CologneError::SchemaMismatch {
                relation: match &s {
                    cologne_datalog::SchemaError::Arity { relation, .. } => relation.clone(),
                    cologne_datalog::SchemaError::Kind { relation, .. } => relation.clone(),
                },
                detail: s.to_string(),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = CologneError::MissingParameter("max_migrates".into());
        assert!(e.to_string().contains("max_migrates"));
        let e = CologneError::UnboundVariable {
            rule: "d1".into(),
            variable: "C".into(),
        };
        assert!(e.to_string().contains("d1"));
        let e = CologneError::GoalRelationEmpty("aggCost".into());
        assert!(e.to_string().contains("aggCost"));
        assert_eq!(
            CologneError::NoGoal.to_string(),
            "program has no goal declaration"
        );
    }

    #[test]
    fn conversions_from_compiler_errors() {
        let parse_err = cologne_colog::parse_program("goal bogus").unwrap_err();
        let e: CologneError = parse_err.into();
        assert!(matches!(e, CologneError::Parse(_)));
    }
}
