//! Expressions appearing in rule bodies.
//!
//! Colog rule bodies contain, besides predicates, boolean expressions
//! (selections such as `Hid1 != Hid2` or `Mem <= M`) and assignments
//! (`R2 := -R1`). Both are built from [`Expr`] trees and evaluated against
//! the variable [`Bindings`] accumulated while joining the body predicates.

use crate::value::Value;

/// A term: either a named rule variable or a constant value.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Term {
    /// A rule variable (`Vid`, `Cpu`, ...). By Datalog convention these start
    /// with an uppercase letter in the surface syntax.
    Var(String),
    /// A constant.
    Const(Value),
}

impl Term {
    /// Convenience constructor for a variable term.
    pub fn var(name: &str) -> Term {
        Term::Var(name.to_string())
    }

    /// Convenience constructor for an integer constant term.
    pub fn int(v: i64) -> Term {
        Term::Const(Value::Int(v))
    }
}

/// Binary operators usable in Colog expressions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Op {
    Add,
    Sub,
    Mul,
    Div,
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
    And,
    Or,
}

impl Op {
    /// True for operators producing booleans.
    pub fn is_comparison(&self) -> bool {
        matches!(self, Op::Eq | Op::Ne | Op::Lt | Op::Le | Op::Gt | Op::Ge)
    }
}

/// An expression tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Expr {
    /// A leaf term.
    Term(Term),
    /// Binary operation.
    BinOp(Op, Box<Expr>, Box<Expr>),
    /// Absolute value `|e|`.
    Abs(Box<Expr>),
    /// Negation `-e`.
    Neg(Box<Expr>),
    /// Logical not.
    Not(Box<Expr>),
}

impl Expr {
    /// Leaf variable expression.
    pub fn var(name: &str) -> Expr {
        Expr::Term(Term::var(name))
    }

    /// Leaf integer expression.
    pub fn int(v: i64) -> Expr {
        Expr::Term(Term::int(v))
    }

    /// Leaf constant expression.
    pub fn value(v: Value) -> Expr {
        Expr::Term(Term::Const(v))
    }

    /// Build `lhs op rhs`.
    pub fn bin(op: Op, lhs: Expr, rhs: Expr) -> Expr {
        Expr::BinOp(op, Box::new(lhs), Box::new(rhs))
    }

    /// Collect the names of all variables referenced by the expression.
    pub fn variables(&self) -> Vec<String> {
        let mut out = Vec::new();
        self.collect_vars(&mut out);
        out
    }

    fn collect_vars(&self, out: &mut Vec<String>) {
        match self {
            Expr::Term(Term::Var(v)) => {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
            Expr::Term(Term::Const(_)) => {}
            Expr::BinOp(_, a, b) => {
                a.collect_vars(out);
                b.collect_vars(out);
            }
            Expr::Abs(e) | Expr::Neg(e) | Expr::Not(e) => e.collect_vars(out),
        }
    }

    /// Evaluate against bindings; fails on unbound variables, type errors or
    /// symbolic (solver) values, which regular Datalog evaluation must never
    /// encounter.
    pub fn eval(&self, bindings: &Bindings) -> Result<Value, EvalError> {
        match self {
            Expr::Term(Term::Const(v)) => {
                if v.is_symbolic() {
                    Err(EvalError::SymbolicValue)
                } else {
                    Ok(v.clone())
                }
            }
            Expr::Term(Term::Var(name)) => match bindings.get(name) {
                Some(v) if v.is_symbolic() => Err(EvalError::SymbolicValue),
                Some(v) => Ok(v.clone()),
                None => Err(EvalError::UnboundVariable(name.clone())),
            },
            Expr::Neg(e) => match e.eval(bindings)? {
                Value::Int(i) => Ok(Value::Int(-i)),
                Value::Float(f) => Ok(Value::float(-f.0)),
                other => Err(EvalError::TypeMismatch(format!("cannot negate {other}"))),
            },
            Expr::Abs(e) => match e.eval(bindings)? {
                Value::Int(i) => Ok(Value::Int(i.abs())),
                Value::Float(f) => Ok(Value::float(f.0.abs())),
                other => Err(EvalError::TypeMismatch(format!("cannot take |{other}|"))),
            },
            Expr::Not(e) => {
                let v = e.eval(bindings)?;
                match v.as_bool() {
                    Some(b) => Ok(Value::Bool(!b)),
                    None => Err(EvalError::TypeMismatch(format!("cannot negate {v}"))),
                }
            }
            Expr::BinOp(op, a, b) => {
                let va = a.eval(bindings)?;
                let vb = b.eval(bindings)?;
                eval_binop(*op, &va, &vb)
            }
        }
    }

    /// Evaluate and coerce to a boolean (for selection predicates).
    pub fn eval_bool(&self, bindings: &Bindings) -> Result<bool, EvalError> {
        let v = self.eval(bindings)?;
        v.as_bool()
            .ok_or_else(|| EvalError::TypeMismatch(format!("expected boolean, got {v}")))
    }
}

fn eval_binop(op: Op, a: &Value, b: &Value) -> Result<Value, EvalError> {
    use Op::*;
    match op {
        And | Or => {
            let (ba, bb) = match (a.as_bool(), b.as_bool()) {
                (Some(x), Some(y)) => (x, y),
                _ => {
                    return Err(EvalError::TypeMismatch(format!(
                        "boolean operator on {a} and {b}"
                    )))
                }
            };
            Ok(Value::Bool(if op == And { ba && bb } else { ba || bb }))
        }
        Eq | Ne => {
            // Numeric comparison when both are numeric; structural otherwise.
            let equal = match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x == y,
                _ => a == b,
            };
            Ok(Value::Bool(if op == Eq { equal } else { !equal }))
        }
        Lt | Le | Gt | Ge => {
            let (x, y) = match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => (x, y),
                _ => {
                    return Err(EvalError::TypeMismatch(format!(
                        "ordering comparison on {a} and {b}"
                    )))
                }
            };
            let r = match op {
                Lt => x < y,
                Le => x <= y,
                Gt => x > y,
                Ge => x >= y,
                _ => unreachable!(),
            };
            Ok(Value::Bool(r))
        }
        Add | Sub | Mul | Div => match (a, b) {
            (Value::Int(x), Value::Int(y)) => {
                let r = match op {
                    Add => x + y,
                    Sub => x - y,
                    Mul => x * y,
                    Div => {
                        if *y == 0 {
                            return Err(EvalError::DivisionByZero);
                        }
                        x / y
                    }
                    _ => unreachable!(),
                };
                Ok(Value::Int(r))
            }
            _ => {
                let (x, y) = match (a.as_f64(), b.as_f64()) {
                    (Some(x), Some(y)) => (x, y),
                    _ => {
                        return Err(EvalError::TypeMismatch(format!(
                            "arithmetic on {a} and {b}"
                        )))
                    }
                };
                let r = match op {
                    Add => x + y,
                    Sub => x - y,
                    Mul => x * y,
                    Div => {
                        if y == 0.0 {
                            return Err(EvalError::DivisionByZero);
                        }
                        x / y
                    }
                    _ => unreachable!(),
                };
                Ok(Value::float(r))
            }
        },
    }
}

/// Errors raised while evaluating expressions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EvalError {
    /// A variable was not bound by the body predicates evaluated so far.
    UnboundVariable(String),
    /// Operation applied to incompatible value types.
    TypeMismatch(String),
    /// Integer or float division by zero.
    DivisionByZero,
    /// A symbolic (solver) value reached regular Datalog evaluation; such
    /// rules must be routed to the constraint-solver grounding path instead.
    SymbolicValue,
}

impl std::fmt::Display for EvalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EvalError::UnboundVariable(v) => write!(f, "unbound variable {v}"),
            EvalError::TypeMismatch(m) => write!(f, "type mismatch: {m}"),
            EvalError::DivisionByZero => write!(f, "division by zero"),
            EvalError::SymbolicValue => write!(f, "symbolic solver value in regular evaluation"),
        }
    }
}

impl std::error::Error for EvalError {}

/// Variable bindings built up while matching body predicates.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Bindings {
    entries: Vec<(String, Value)>,
}

impl Bindings {
    /// Empty bindings.
    pub fn new() -> Self {
        Bindings {
            entries: Vec::new(),
        }
    }

    /// Look up a variable.
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.entries.iter().find(|(n, _)| n == name).map(|(_, v)| v)
    }

    /// Bind a variable; if already bound, returns whether the values agree
    /// (join semantics).
    pub fn bind(&mut self, name: &str, value: Value) -> bool {
        match self.get(name) {
            Some(existing) => existing == &value,
            None => {
                self.entries.push((name.to_string(), value));
                true
            }
        }
    }

    /// Overwrite or insert a binding unconditionally (used by `:=`).
    pub fn set(&mut self, name: &str, value: Value) {
        if let Some(slot) = self.entries.iter_mut().find(|(n, _)| n == name) {
            slot.1 = value;
        } else {
            self.entries.push((name.to_string(), value));
        }
    }

    /// Number of bound variables.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no variable is bound.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterate over `(name, value)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(n, v)| (n.as_str(), v))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{NodeId, SymId};

    fn bind(pairs: &[(&str, Value)]) -> Bindings {
        let mut b = Bindings::new();
        for (n, v) in pairs {
            b.bind(n, v.clone());
        }
        b
    }

    #[test]
    fn arithmetic_int_and_float() {
        let b = bind(&[("X", Value::Int(6)), ("Y", Value::float(1.5))]);
        let e = Expr::bin(Op::Mul, Expr::var("X"), Expr::int(2));
        assert_eq!(e.eval(&b).unwrap(), Value::Int(12));
        let f = Expr::bin(Op::Add, Expr::var("X"), Expr::var("Y"));
        assert_eq!(f.eval(&b).unwrap(), Value::float(7.5));
        let d = Expr::bin(Op::Div, Expr::var("X"), Expr::int(4));
        assert_eq!(d.eval(&b).unwrap(), Value::Int(1)); // integer division
    }

    #[test]
    fn division_by_zero_reported() {
        let b = Bindings::new();
        let e = Expr::bin(Op::Div, Expr::int(4), Expr::int(0));
        assert_eq!(e.eval(&b), Err(EvalError::DivisionByZero));
    }

    #[test]
    fn comparisons_and_boolean_ops() {
        let b = bind(&[("A", Value::Int(3)), ("B", Value::Int(5))]);
        let lt = Expr::bin(Op::Lt, Expr::var("A"), Expr::var("B"));
        assert_eq!(lt.eval_bool(&b), Ok(true));
        let ne = Expr::bin(Op::Ne, Expr::var("A"), Expr::var("B"));
        let both = Expr::bin(Op::And, lt, ne);
        assert_eq!(both.eval_bool(&b), Ok(true));
        let not = Expr::Not(Box::new(Expr::bin(Op::Ge, Expr::var("A"), Expr::var("B"))));
        assert_eq!(not.eval_bool(&b), Ok(true));
    }

    #[test]
    fn equality_is_numeric_across_types_but_structural_otherwise() {
        let b = Bindings::new();
        let num = Expr::bin(Op::Eq, Expr::int(2), Expr::value(Value::float(2.0)));
        assert_eq!(num.eval_bool(&b), Ok(true));
        let strs = Expr::bin(Op::Eq, Expr::value("a".into()), Expr::value("b".into()));
        assert_eq!(strs.eval_bool(&b), Ok(false));
    }

    #[test]
    fn abs_and_neg() {
        let b = bind(&[("X", Value::Int(-4))]);
        assert_eq!(
            Expr::Abs(Box::new(Expr::var("X"))).eval(&b).unwrap(),
            Value::Int(4)
        );
        assert_eq!(
            Expr::Neg(Box::new(Expr::var("X"))).eval(&b).unwrap(),
            Value::Int(4)
        );
        let f = bind(&[("X", Value::float(-2.5))]);
        assert_eq!(
            Expr::Abs(Box::new(Expr::var("X"))).eval(&f).unwrap(),
            Value::float(2.5)
        );
    }

    #[test]
    fn unbound_and_symbolic_errors() {
        let b = Bindings::new();
        assert_eq!(
            Expr::var("Missing").eval(&b),
            Err(EvalError::UnboundVariable("Missing".into()))
        );
        let s = bind(&[("S", Value::Sym(SymId(1)))]);
        assert_eq!(Expr::var("S").eval(&s), Err(EvalError::SymbolicValue));
    }

    #[test]
    fn type_errors_reported() {
        let b = bind(&[("N", Value::Addr(NodeId(1)))]);
        let e = Expr::bin(Op::Add, Expr::var("N"), Expr::int(1));
        assert!(matches!(e.eval(&b), Err(EvalError::TypeMismatch(_))));
        let c = Expr::bin(Op::Lt, Expr::value("a".into()), Expr::int(1));
        assert!(matches!(c.eval(&b), Err(EvalError::TypeMismatch(_))));
    }

    #[test]
    fn bindings_join_semantics() {
        let mut b = Bindings::new();
        assert!(b.bind("X", Value::Int(1)));
        assert!(b.bind("X", Value::Int(1)));
        assert!(!b.bind("X", Value::Int(2)));
        b.set("X", Value::Int(9));
        assert_eq!(b.get("X"), Some(&Value::Int(9)));
        assert_eq!(b.len(), 1);
        assert!(!b.is_empty());
    }

    #[test]
    fn variables_collection_is_deduplicated() {
        let e = Expr::bin(
            Op::Add,
            Expr::bin(Op::Mul, Expr::var("V"), Expr::var("Cpu")),
            Expr::var("V"),
        );
        assert_eq!(e.variables(), vec!["V".to_string(), "Cpu".to_string()]);
    }
}
