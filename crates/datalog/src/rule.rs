//! Rule representation (the engine's intermediate form).
//!
//! The Colog compiler (crate `cologne-colog`) lowers regular Datalog rules to
//! this IR; solver rules are instead grounded by the Cologne runtime. A rule
//! is `head <- body` where the body is an ordered list of predicate atoms,
//! boolean filters and assignments, and the head may carry aggregate
//! functions over grouped variables (e.g. `hostCpu(Hid, SUM<C>)`).
//!
//! ## Relationship to compiled plans
//!
//! This IR is *name-based*: atoms refer to relations by string and to
//! variables by name, and [`Atom::match_tuple`] unifies against a
//! [`Bindings`] map. The engine does not evaluate rules in this form.
//! When a rule is registered with [`crate::Engine::add_rule`] it is
//! compiled once into a `RulePlan` (module `plan`, crate-private): relation
//! names become interned `RelId`s, variable names become dense `u16` slots,
//! and the body atoms are reordered into an explicit join order with a
//! per-atom index probe strategy. The [`crate::engine::ReferenceEngine`]
//! keeps interpreting this IR directly, which is what makes it a useful
//! equivalence oracle for the compiled path.
//!
//! Invariants the compiler relies on (and `plan::compile` checks or
//! preserves):
//!
//! * body atoms bind variables left-to-right; a filter or assignment may
//!   only read variables bound by atoms (or assignments) before it, and
//!   reordering never moves an atom across an expression that reads one of
//!   its variables;
//! * a located head's first argument is the destination address and must be
//!   bound by the body;
//! * aggregate heads group by their non-aggregate arguments; such rules
//!   (and rules whose body mentions the same relation twice) are evaluated
//!   by recompute-and-diff rather than per-delta counting, because a single
//!   delta can participate in several derivations of the same head tuple.

use crate::expr::{Bindings, EvalError, Expr, Term};
use crate::value::Value;

/// A predicate occurrence `rel(arg1, ..., argn)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Atom {
    /// Relation name.
    pub relation: String,
    /// Argument terms (variables or constants).
    pub args: Vec<Term>,
    /// True if this predicate carries a location specifier (`@X` as its first
    /// argument) — the distributed-Colog convention from Sec. 4.3.
    pub located: bool,
}

impl Atom {
    /// Build an atom without a location specifier.
    pub fn new(relation: &str, args: Vec<Term>) -> Atom {
        Atom {
            relation: relation.to_string(),
            args,
            located: false,
        }
    }

    /// Build a located atom (first argument is the node address).
    pub fn located(relation: &str, args: Vec<Term>) -> Atom {
        Atom {
            relation: relation.to_string(),
            args,
            located: true,
        }
    }

    /// Match a tuple against this atom, extending `bindings`.
    /// Returns false if arity or already-bound variables disagree.
    pub fn match_tuple(&self, tuple: &[Value], bindings: &mut Bindings) -> bool {
        if tuple.len() != self.args.len() {
            return false;
        }
        for (term, value) in self.args.iter().zip(tuple.iter()) {
            match term {
                Term::Const(c) => {
                    if c != value {
                        return false;
                    }
                }
                Term::Var(name) => {
                    if !bindings.bind(name, value.clone()) {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Instantiate the atom into a tuple using bindings. Fails on unbound
    /// variables.
    pub fn instantiate(&self, bindings: &Bindings) -> Result<Vec<Value>, EvalError> {
        self.args
            .iter()
            .map(|t| match t {
                Term::Const(c) => Ok(c.clone()),
                Term::Var(name) => bindings
                    .get(name)
                    .cloned()
                    .ok_or_else(|| EvalError::UnboundVariable(name.clone())),
            })
            .collect()
    }

    /// Variable names appearing in the atom, in order of first appearance.
    pub fn variables(&self) -> Vec<String> {
        let mut out = Vec::new();
        for t in &self.args {
            if let Term::Var(v) = t {
                if !out.contains(v) {
                    out.push(v.clone());
                }
            }
        }
        out
    }
}

/// One element of a rule body.
#[derive(Debug, Clone, PartialEq)]
pub enum BodyItem {
    /// A predicate to join with.
    Atom(Atom),
    /// A boolean selection over already-bound variables.
    Filter(Expr),
    /// An assignment `Var := Expr` binding a new variable.
    Assign(String, Expr),
}

/// Aggregate functions supported in rule heads.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `SUM<X>`
    Sum,
    /// `COUNT<X>`
    Count,
    /// `MIN<X>`
    Min,
    /// `MAX<X>`
    Max,
    /// `SUMABS<X>` — sum of absolute values (Follow-the-Sun migration cost).
    SumAbs,
    /// `STDEV<X>` — standard deviation (ACloud load-balancing goal).
    Stdev,
    /// `UNIQUE<X>` — number of distinct values (wireless interface count).
    Unique,
}

impl AggFunc {
    /// Parse an aggregate keyword as it appears in Colog source.
    pub fn from_keyword(kw: &str) -> Option<AggFunc> {
        match kw.to_ascii_uppercase().as_str() {
            "SUM" => Some(AggFunc::Sum),
            "COUNT" => Some(AggFunc::Count),
            "MIN" => Some(AggFunc::Min),
            "MAX" => Some(AggFunc::Max),
            "SUMABS" => Some(AggFunc::SumAbs),
            "STDEV" => Some(AggFunc::Stdev),
            "UNIQUE" => Some(AggFunc::Unique),
            _ => None,
        }
    }

    /// The Colog keyword for this aggregate.
    pub fn keyword(&self) -> &'static str {
        match self {
            AggFunc::Sum => "SUM",
            AggFunc::Count => "COUNT",
            AggFunc::Min => "MIN",
            AggFunc::Max => "MAX",
            AggFunc::SumAbs => "SUMABS",
            AggFunc::Stdev => "STDEV",
            AggFunc::Unique => "UNIQUE",
        }
    }

    /// Compute the aggregate over concrete values.
    pub fn compute(&self, values: &[Value]) -> Value {
        match self {
            AggFunc::Count => Value::Int(values.len() as i64),
            AggFunc::Unique => {
                let mut distinct: Vec<&Value> = values.iter().collect();
                distinct.sort();
                distinct.dedup();
                Value::Int(distinct.len() as i64)
            }
            AggFunc::Min => values.iter().min().cloned().unwrap_or(Value::Int(0)),
            AggFunc::Max => values.iter().max().cloned().unwrap_or(Value::Int(0)),
            AggFunc::Sum | AggFunc::SumAbs => {
                let all_int = values
                    .iter()
                    .all(|v| matches!(v, Value::Int(_) | Value::Bool(_)));
                if all_int {
                    let mut s = 0i64;
                    for v in values {
                        let i = v.as_int().unwrap_or(0);
                        s += if *self == AggFunc::SumAbs { i.abs() } else { i };
                    }
                    Value::Int(s)
                } else {
                    let mut s = 0.0f64;
                    for v in values {
                        let x = v.as_f64().unwrap_or(0.0);
                        s += if *self == AggFunc::SumAbs { x.abs() } else { x };
                    }
                    Value::float(s)
                }
            }
            AggFunc::Stdev => {
                if values.is_empty() {
                    return Value::float(0.0);
                }
                let xs: Vec<f64> = values.iter().map(|v| v.as_f64().unwrap_or(0.0)).collect();
                let mean = xs.iter().sum::<f64>() / xs.len() as f64;
                let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / xs.len() as f64;
                Value::float(var.sqrt())
            }
        }
    }
}

/// One argument position of a rule head.
#[derive(Debug, Clone, PartialEq)]
pub enum HeadArg {
    /// A plain term (group-by attribute or constant).
    Term(Term),
    /// An aggregate over a body variable, e.g. `SUM<C>`.
    Agg(AggFunc, String),
}

/// A rule head `rel(args...)`.
#[derive(Debug, Clone, PartialEq)]
pub struct Head {
    /// Relation produced by the rule.
    pub relation: String,
    /// Head arguments.
    pub args: Vec<HeadArg>,
    /// True if the head carries a location specifier (first argument is the
    /// destination node address).
    pub located: bool,
}

impl Head {
    /// Head with only plain terms.
    pub fn simple(relation: &str, args: Vec<Term>) -> Head {
        Head {
            relation: relation.to_string(),
            args: args.into_iter().map(HeadArg::Term).collect(),
            located: false,
        }
    }

    /// True if any head argument is an aggregate.
    pub fn has_aggregate(&self) -> bool {
        self.args.iter().any(|a| matches!(a, HeadArg::Agg(_, _)))
    }

    /// The group-by terms (non-aggregate head arguments), in order.
    pub fn group_by(&self) -> Vec<&Term> {
        self.args
            .iter()
            .filter_map(|a| match a {
                HeadArg::Term(t) => Some(t),
                HeadArg::Agg(_, _) => None,
            })
            .collect()
    }
}

/// A complete rule.
#[derive(Debug, Clone, PartialEq)]
pub struct Rule {
    /// Rule label (`r1`, `d2`, `c3`, ... in the paper's programs).
    pub label: String,
    /// Head.
    pub head: Head,
    /// Body items, evaluated left to right.
    pub body: Vec<BodyItem>,
}

impl Rule {
    /// Create a rule.
    pub fn new(label: &str, head: Head, body: Vec<BodyItem>) -> Rule {
        Rule {
            label: label.to_string(),
            head,
            body,
        }
    }

    /// Names of the relations referenced in the body.
    pub fn body_relations(&self) -> Vec<&str> {
        self.body
            .iter()
            .filter_map(|b| match b {
                BodyItem::Atom(a) => Some(a.relation.as_str()),
                _ => None,
            })
            .collect()
    }

    /// True if the head contains aggregates.
    pub fn is_aggregate(&self) -> bool {
        self.head.has_aggregate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Op;

    #[test]
    fn atom_matching_binds_and_checks() {
        let atom = Atom::new("vm", vec![Term::var("Vid"), Term::var("Cpu"), Term::int(4)]);
        let mut b = Bindings::new();
        assert!(atom.match_tuple(&[Value::Int(1), Value::Int(50), Value::Int(4)], &mut b));
        assert_eq!(b.get("Vid"), Some(&Value::Int(1)));
        // constant mismatch
        let mut b2 = Bindings::new();
        assert!(!atom.match_tuple(&[Value::Int(1), Value::Int(50), Value::Int(8)], &mut b2));
        // arity mismatch
        let mut b3 = Bindings::new();
        assert!(!atom.match_tuple(&[Value::Int(1)], &mut b3));
        // join conflict on repeated variable
        let dup = Atom::new("link", vec![Term::var("X"), Term::var("X")]);
        let mut b4 = Bindings::new();
        assert!(!dup.match_tuple(&[Value::Int(1), Value::Int(2)], &mut b4));
    }

    #[test]
    fn atom_instantiation() {
        let atom = Atom::new("host", vec![Term::var("Hid"), Term::int(0)]);
        let mut b = Bindings::new();
        b.bind("Hid", Value::Int(9));
        assert_eq!(
            atom.instantiate(&b).unwrap(),
            vec![Value::Int(9), Value::Int(0)]
        );
        let missing = Atom::new("host", vec![Term::var("Nope")]);
        assert!(missing.instantiate(&b).is_err());
    }

    #[test]
    fn aggregate_computations() {
        let ints = vec![Value::Int(3), Value::Int(-1), Value::Int(4)];
        assert_eq!(AggFunc::Sum.compute(&ints), Value::Int(6));
        assert_eq!(AggFunc::SumAbs.compute(&ints), Value::Int(8));
        assert_eq!(AggFunc::Count.compute(&ints), Value::Int(3));
        assert_eq!(AggFunc::Min.compute(&ints), Value::Int(-1));
        assert_eq!(AggFunc::Max.compute(&ints), Value::Int(4));
        assert_eq!(
            AggFunc::Unique.compute(&[Value::Int(1), Value::Int(1), Value::Int(2)]),
            Value::Int(2)
        );
        let st = AggFunc::Stdev.compute(&[Value::Int(2), Value::Int(4)]);
        assert_eq!(st, Value::float(1.0));
        assert_eq!(AggFunc::Stdev.compute(&[]), Value::float(0.0));
    }

    #[test]
    fn aggregate_sum_switches_to_float() {
        let mixed = vec![Value::Int(1), Value::float(2.5)];
        assert_eq!(AggFunc::Sum.compute(&mixed), Value::float(3.5));
    }

    #[test]
    fn agg_keyword_roundtrip() {
        for f in [
            AggFunc::Sum,
            AggFunc::Count,
            AggFunc::Min,
            AggFunc::Max,
            AggFunc::SumAbs,
            AggFunc::Stdev,
            AggFunc::Unique,
        ] {
            assert_eq!(AggFunc::from_keyword(f.keyword()), Some(f));
        }
        assert_eq!(AggFunc::from_keyword("AVERAGE"), None);
    }

    #[test]
    fn head_and_rule_helpers() {
        let head = Head {
            relation: "hostCpu".into(),
            args: vec![
                HeadArg::Term(Term::var("Hid")),
                HeadArg::Agg(AggFunc::Sum, "C".into()),
            ],
            located: false,
        };
        assert!(head.has_aggregate());
        assert_eq!(head.group_by().len(), 1);
        let rule = Rule::new(
            "d1",
            head,
            vec![
                BodyItem::Atom(Atom::new(
                    "assign",
                    vec![Term::var("Vid"), Term::var("Hid"), Term::var("V")],
                )),
                BodyItem::Atom(Atom::new(
                    "vm",
                    vec![Term::var("Vid"), Term::var("Cpu"), Term::var("Mem")],
                )),
                BodyItem::Assign(
                    "C".into(),
                    Expr::bin(Op::Mul, Expr::var("V"), Expr::var("Cpu")),
                ),
            ],
        );
        assert!(rule.is_aggregate());
        assert_eq!(rule.body_relations(), vec!["assign", "vm"]);
    }
}
