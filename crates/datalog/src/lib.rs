//! # cologne-datalog
//!
//! An incremental, distributed-capable Datalog engine — the reproduction's
//! substitute for the RapidNet declarative networking engine used by the
//! Cologne paper (Liu et al., VLDB 2012).
//!
//! The engine provides the features the paper relies on in Sec. 5:
//!
//! * **Pipelined semi-naïve evaluation** — facts are processed one delta at a
//!   time and rule heads are maintained incrementally (counting view
//!   maintenance), so rules never need to be recomputed from scratch when
//!   inputs change.
//! * **Aggregates** — `SUM`, `COUNT`, `MIN`, `MAX`, `STDEV`, `SUMABS` and
//!   `UNIQUE`, matching the aggregate constructs of the Colog language.
//! * **Location specifiers** — a rule head addressed (`@X`) to a different
//!   node is shipped to that node's engine instead of being materialized
//!   locally; the Cologne runtime routes these tuples through the network
//!   substrate (`cologne-net`).
//!
//! ```
//! use cologne_datalog::{Engine, Rule, Head, BodyItem, Atom, Term, Value, NodeId};
//!
//! // path(X,Y) <- link(X,Y)
//! let mut engine = Engine::new(NodeId(0));
//! engine.add_rule(Rule::new(
//!     "r1",
//!     Head::simple("path", vec![Term::var("X"), Term::var("Y")]),
//!     vec![BodyItem::Atom(Atom::new("link", vec![Term::var("X"), Term::var("Y")]))],
//! ));
//! engine.insert("link", vec![Value::Int(1), Value::Int(2)]);
//! engine.run();
//! assert!(engine.contains("path", &vec![Value::Int(1), Value::Int(2)]));
//! ```

pub mod engine;
pub mod expr;
pub(crate) mod intern;
pub(crate) mod plan;
pub mod rule;
pub mod schema;
pub mod serde;
pub mod tuple;
pub mod value;

pub use engine::{DeltaSummary, Engine, EngineStats, ReferenceEngine, RelationDelta, RemoteTuple};
pub use expr::{Bindings, EvalError, Expr, Op, Term};
pub use rule::{AggFunc, Atom, BodyItem, Head, HeadArg, Rule};
pub use schema::{did_you_mean, IngestError, SchemaError, SchemaSet, TupleSchema};
pub use serde::{decode_tuple, decode_value, encode_tuple, encode_value, DecodeError};
pub use tuple::{Relation, Tuple};
pub use value::{NodeId, RelId, StrId, SymId, Value, ValueKind, F64};
