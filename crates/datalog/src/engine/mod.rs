//! The incremental Datalog evaluation engine.
//!
//! This reproduces the slice of RapidNet the paper relies on (Sec. 5.1):
//! *pipelined semi-naïve* (PSN) evaluation, in which tuples are processed one
//! delta at a time and rule heads are maintained incrementally via counting
//! view maintenance, plus the distributed convention that a rule head with a
//! location specifier addressed to another node is shipped over the network
//! instead of being materialized locally.
//!
//! Rules whose head contains aggregates (or whose body repeats a relation)
//! are maintained by full re-evaluation followed by diffing — semantically
//! identical, and the affected rules in the paper's programs are tiny.
//!
//! ## Evaluation-core architecture
//!
//! The engine is built for the 10^5–10^6-tuple groundings of the paper's
//! scaling experiments; four layers cooperate:
//!
//! * **Interning** (`crate::intern`) — relation names and `Value::Str`
//!   payloads are mapped to dense `u32` ids at the API boundary, so every
//!   internal structure is keyed by [`crate::RelId`]-style indexes instead
//!   of `String` hash maps and stored rows are flat arrays of copyable
//!   words (`crate::tuple::IRow`).
//! * **Indexed stores** (`crate::tuple::RelStore`) — each relation is a
//!   deduplicating arena with counted multiplicities, an O(1) visible
//!   count, and per-(arity, bound-column-set) hash indexes built lazily the
//!   first time a compiled plan probes that column set.
//! * **Compiled plans** (`crate::plan`) — `add_rule` compiles each rule
//!   once into a `crate::plan::RulePlan`: positional slot bindings,
//!   per-column match actions, probe keys, and a safety-checked join order
//!   (selections and index probes replace the interpreted
//!   `Atom::match_tuple`/`Bindings` walk). The pipelined delta loop fires
//!   the pinned variant of a plan for each delta tuple, joining only
//!   against indexed stabilized relations.
//! * **Batched delta bookkeeping** — visibility changes are accumulated in
//!   dense per-relation counters during a run and folded into the
//!   name-keyed [`DeltaSummary`] once at the end, so the hot loop never
//!   touches a `BTreeMap<String, _>`.
//!
//! The original interpreted engine is preserved as [`reference`](mod@reference) (the
//! executable specification); the equivalence test-suite asserts both
//! engines agree on fixpoint tables, delta summaries and outbox contents.

pub mod reference;

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

use crate::expr::Bindings;
use crate::intern::Interner;
use crate::plan::{self, HeadCol, HeadPlan, RulePlan};
use crate::rule::{BodyItem, Rule};
use crate::schema::{did_you_mean, IngestError, SchemaSet};
use crate::tuple::{IRow, IVal, RelStore, Tuple};
use crate::value::{NodeId, Value};

pub use reference::ReferenceEngine;

/// A tuple addressed to another Cologne instance.
///
/// Remote tuples always carry the *resolved* relation name and string
/// values: interner ids are engine-local, so content (not ids) crosses the
/// wire and the receiving engine re-interns on ingest. Two nodes therefore
/// converge to identical tables even when their insertion orders — and thus
/// their id assignments — differ.
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteTuple {
    /// Destination node.
    pub dest: NodeId,
    /// Relation name at the destination.
    pub relation: String,
    /// The tuple payload (including the location attribute).
    pub tuple: Tuple,
    /// True for insertion, false for deletion.
    pub insert: bool,
}

impl RemoteTuple {
    /// Size in bytes used for the communication-overhead accounting of
    /// Fig. 5: 4 bytes per attribute plus a small per-message header, an
    /// approximation of RapidNet's wire format.
    pub fn wire_size(&self) -> usize {
        20 + self.relation.len() + 4 * self.tuple.len()
    }
}

/// Counters describing engine activity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Number of externally inserted/deleted tuples processed.
    pub external_deltas: u64,
    /// Number of rule firings (derivations attempted).
    pub derivations: u64,
    /// Number of head tuples that changed visibility.
    pub updates: u64,
    /// Number of tuples addressed to remote nodes.
    pub remote_sends: u64,
    /// Number of full aggregate re-evaluations.
    pub aggregate_recomputes: u64,
    /// Number of [`Engine::insert`]/[`Engine::delete`] calls that targeted a
    /// relation absent from both the EDB and the IDB (no stored facts, no
    /// rule mentions it, no schema declares it) — almost always a typo in
    /// the relation name. The legacy entry points still queue the tuple for
    /// compatibility; [`Engine::try_insert`] rejects it instead.
    pub unknown_relation_inserts: u64,
}

/// Net visibility changes of one relation since a delta-summary checkpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RelationDelta {
    /// Tuples that became visible.
    pub inserted: u64,
    /// Tuples that stopped being visible.
    pub deleted: u64,
}

impl RelationDelta {
    /// Total number of visibility changes.
    pub fn total(&self) -> u64 {
        self.inserted + self.deleted
    }
}

/// Per-relation summary of everything that changed since the last checkpoint
/// ([`Engine::take_delta_summary`]).
///
/// This is the contract the Cologne grounding stage consumes to decide
/// between a full re-grounding and an incremental one: a relation absent
/// from `changes` had no visible tuple inserted or deleted since the summary
/// was last taken — its contents are byte-identical to what the previous
/// grounding saw. Multiplicity-only changes (a duplicate insert of an
/// already-visible tuple, or a delete that leaves copies) do not dirty a
/// relation, matching the visibility semantics of [`Engine::tuples`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaSummary {
    /// Relations with at least one visibility change, with their counts.
    pub changes: BTreeMap<String, RelationDelta>,
}

impl DeltaSummary {
    /// True when nothing changed since the checkpoint.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// True when `relation` had no visibility change since the checkpoint.
    pub fn is_clean(&self, relation: &str) -> bool {
        !self.changes.contains_key(relation)
    }

    /// Names of the dirty relations, sorted.
    pub fn dirty_relations(&self) -> impl Iterator<Item = &str> {
        self.changes.keys().map(String::as_str)
    }

    /// Total visibility changes across all relations.
    pub fn total_changes(&self) -> u64 {
        self.changes.values().map(RelationDelta::total).sum()
    }

    fn record(&mut self, relation: &str, inserted: bool) {
        let entry = self.changes.entry(relation.to_string()).or_default();
        if inserted {
            entry.inserted += 1;
        } else {
            entry.deleted += 1;
        }
    }
}

/// An internal pending delta: interned relation id plus interned row.
#[derive(Debug, Clone)]
struct IDelta {
    rel: u32,
    row: IRow,
    insert: bool,
}

/// The per-node Datalog engine.
pub struct Engine {
    node: NodeId,
    interner: Interner,
    /// Relation stores, indexed by relation id (always sized to the
    /// interner's relation count).
    stores: Vec<RelStore>,
    /// Whether the relation "exists" in the legacy sense: a delta has been
    /// applied to it (mirrors the reference engine's lazily created
    /// `HashMap` entries, which persist even when no visibility changed).
    exists: Vec<bool>,
    rules: Vec<Rule>,
    /// Compiled plan per rule (parallel to `rules`).
    plans: Vec<RulePlan>,
    /// relation id -> indices of rules that mention it in their body
    trigger: Vec<Vec<usize>>,
    /// previous output of recompute rules (interned rows, sorted)
    prev_output: HashMap<usize, Vec<IRow>>,
    pending: VecDeque<IDelta>,
    outbox: Vec<RemoteTuple>,
    stats: EngineStats,
    /// Visibility changes since the last [`Engine::take_delta_summary`],
    /// folded from the dense counters at the end of each run.
    delta: DeltaSummary,
    /// Dense per-relation insert/delete counters for the current run —
    /// the batched form of [`DeltaSummary`] bookkeeping.
    delta_ins: Vec<u64>,
    delta_del: Vec<u64>,
    /// Relations touched by the dense counters, in first-touch order.
    delta_touched: Vec<u32>,
    /// Relation names mentioned by any installed rule (head or body) — the
    /// IDB part of the unknown-relation check.
    rule_relations: HashSet<String>,
    /// Declared relation schemas, checked by the validated ingest path.
    schemas: SchemaSet,
    /// Unknown relations already warned about (log-once).
    warned_unknown: HashSet<String>,
}

impl Engine {
    /// Create an engine for the given node.
    pub fn new(node: NodeId) -> Self {
        Engine {
            node,
            interner: Interner::default(),
            stores: Vec::new(),
            exists: Vec::new(),
            rules: Vec::new(),
            plans: Vec::new(),
            trigger: Vec::new(),
            prev_output: HashMap::new(),
            pending: VecDeque::new(),
            outbox: Vec::new(),
            stats: EngineStats::default(),
            delta: DeltaSummary::default(),
            delta_ins: Vec::new(),
            delta_del: Vec::new(),
            delta_touched: Vec::new(),
            rule_relations: HashSet::new(),
            schemas: SchemaSet::new(),
            warned_unknown: HashSet::new(),
        }
    }

    /// The node this engine runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Engine statistics so far.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Visibility changes accumulated since the last
    /// [`Engine::take_delta_summary`] (cumulative, unlike the per-run
    /// counters of [`EngineStats`], which never reset).
    pub fn delta_summary(&self) -> &DeltaSummary {
        &self.delta
    }

    /// Take the accumulated delta summary and start a fresh checkpoint.
    ///
    /// The Cologne runtime calls this right before grounding a COP: the
    /// returned summary describes exactly what changed since the previous
    /// grounding, so clean relations can keep their previously grounded
    /// variables and constraints.
    pub fn take_delta_summary(&mut self) -> DeltaSummary {
        self.flush_delta();
        std::mem::take(&mut self.delta)
    }

    /// Install (or replace) the declared relation schemas. Tuples entering
    /// through [`Engine::try_insert`]/[`Engine::try_delete`] are validated
    /// against them; relations without a schema accept any tuple shape.
    pub fn set_schemas(&mut self, schemas: SchemaSet) {
        self.schemas = schemas;
    }

    /// The declared relation schemas.
    pub fn schemas(&self) -> &SchemaSet {
        &self.schemas
    }

    /// Grow the dense per-relation vectors to the interner's relation count.
    fn grow(&mut self) {
        let n = self.interner.rels.len();
        if self.stores.len() < n {
            self.stores.resize_with(n, RelStore::default);
            self.exists.resize(n, false);
            self.trigger.resize_with(n, Vec::new);
            self.delta_ins.resize(n, 0);
            self.delta_del.resize(n, 0);
        }
    }

    /// Intern a relation name and make sure the dense vectors cover it.
    fn rel_id(&mut self, relation: &str) -> u32 {
        let id = self.interner.rels.intern(relation);
        self.grow();
        id
    }

    /// Store of an existing relation (one that has seen a delta), if any.
    fn store_by_name(&self, relation: &str) -> Option<&RelStore> {
        let id = self.interner.rels.lookup(relation)? as usize;
        if *self.exists.get(id)? {
            self.stores.get(id)
        } else {
            None
        }
    }

    /// Install a rule. Rules may be added before or after facts.
    ///
    /// The rule is compiled once into a `RulePlan`; aggregate rules and
    /// rules whose body repeats a relation are classified for maintenance
    /// by recompute-and-diff, everything else gets pinned delta plans for
    /// pipelined firing.
    pub fn add_rule(&mut self, rule: Rule) {
        let idx = self.rules.len();
        self.rule_relations.insert(rule.head.relation.clone());
        for rel in rule.body_relations() {
            self.rule_relations.insert(rel.to_string());
        }
        let mut body_rels: Vec<&str> = rule.body_relations();
        let repeats = {
            let mut sorted = body_rels.clone();
            sorted.sort_unstable();
            sorted.windows(2).any(|w| w[0] == w[1])
        };
        let recompute = rule.is_aggregate() || repeats;
        let compiled = plan::compile(&rule, recompute, &mut self.interner);
        self.grow();
        body_rels.sort_unstable();
        body_rels.dedup();
        for rel in body_rels {
            let id = self
                .interner
                .rels
                .lookup(rel)
                .expect("compile interns every body relation");
            self.trigger[id as usize].push(idx);
        }
        self.plans.push(compiled);
        self.rules.push(rule);
    }

    /// Install several rules.
    pub fn add_rules(&mut self, rules: impl IntoIterator<Item = Rule>) {
        for r in rules {
            self.add_rule(r);
        }
    }

    /// Number of installed rules.
    pub fn num_rules(&self) -> usize {
        self.rules.len()
    }

    /// True when the engine has any reason to believe the relation exists:
    /// facts are stored under it, a rule mentions it, or a schema declares
    /// it.
    pub fn known_relation(&self, relation: &str) -> bool {
        self.store_by_name(relation).is_some()
            || self.rule_relations.contains(relation)
            || self.schemas.contains(relation)
    }

    /// A declared relation with a name similar to `relation`, for
    /// did-you-mean diagnostics.
    pub fn suggest_relation(&self, relation: &str) -> Option<String> {
        let mut names: Vec<&str> = self
            .exists
            .iter()
            .enumerate()
            .filter(|(_, &e)| e)
            .map(|(i, _)| self.interner.rels.resolve(i as u32))
            .chain(self.rule_relations.iter().map(String::as_str))
            .chain(self.schemas.names())
            .collect();
        names.sort_unstable();
        names.dedup();
        did_you_mean(relation, names)
    }

    /// Validate a tuple for ingestion: the relation must be known (see
    /// [`Engine::known_relation`]) and the tuple must match its schema.
    pub fn validate(&self, relation: &str, tuple: &Tuple) -> Result<(), IngestError> {
        if !self.known_relation(relation) {
            return Err(IngestError::UnknownRelation {
                relation: relation.to_string(),
                suggestion: self.suggest_relation(relation),
            });
        }
        self.schemas.check(relation, tuple)?;
        Ok(())
    }

    /// Queue an insertion after validating it (see [`Engine::validate`]).
    /// Nothing is queued on error, so malformed input — above all tuples
    /// received from remote nodes — cannot corrupt engine state.
    pub fn try_insert(&mut self, relation: &str, tuple: Tuple) -> Result<(), IngestError> {
        self.validate(relation, &tuple)?;
        self.queue(relation, tuple, true);
        Ok(())
    }

    /// Queue a deletion after validating it (see [`Engine::try_insert`]).
    pub fn try_delete(&mut self, relation: &str, tuple: Tuple) -> Result<(), IngestError> {
        self.validate(relation, &tuple)?;
        self.queue(relation, tuple, false);
        Ok(())
    }

    /// Queue a batch of insertions with batched validation: the relation
    /// name is resolved and its schema looked up once for the whole batch
    /// instead of per tuple. Returns the number of tuples queued; nothing
    /// is queued on error. The bulk counterpart of [`Engine::try_insert`]
    /// for 10^5+-tuple loads.
    pub fn try_insert_all(
        &mut self,
        relation: &str,
        tuples: Vec<Tuple>,
    ) -> Result<usize, IngestError> {
        if !self.known_relation(relation) {
            return Err(IngestError::UnknownRelation {
                relation: relation.to_string(),
                suggestion: self.suggest_relation(relation),
            });
        }
        self.schemas.check_all(relation, tuples.iter())?;
        let rel = self.rel_id(relation);
        let n = tuples.len();
        self.pending.reserve(n);
        for tuple in tuples {
            let row = IRow::from_tuple(&tuple, &mut self.interner.strs);
            self.pending.push_back(IDelta {
                rel,
                row,
                insert: true,
            });
        }
        Ok(n)
    }

    /// Queue a batch of insertions through the legacy unchecked path (see
    /// [`Engine::insert`]): one unknown-relation check and one relation-id
    /// resolution for the whole batch.
    pub fn insert_all(&mut self, relation: &str, tuples: impl IntoIterator<Item = Tuple>) {
        self.note_unknown(relation);
        let rel = self.rel_id(relation);
        for tuple in tuples {
            let row = IRow::from_tuple(&tuple, &mut self.interner.strs);
            self.pending.push_back(IDelta {
                rel,
                row,
                insert: true,
            });
        }
    }

    /// Queue an insertion of a base (or received) tuple.
    ///
    /// Legacy unchecked entry point: the tuple is queued whether or not the
    /// relation is known, but an unknown relation is counted into
    /// [`EngineStats::unknown_relation_inserts`] and warned about once —
    /// historically such a typo created a silent, never-read relation.
    /// Prefer [`Engine::try_insert`].
    pub fn insert(&mut self, relation: &str, tuple: Tuple) {
        self.note_unknown(relation);
        self.queue(relation, tuple, true);
    }

    /// Queue a deletion of a base (or received) tuple. Legacy unchecked
    /// entry point; see [`Engine::insert`] and prefer [`Engine::try_delete`].
    pub fn delete(&mut self, relation: &str, tuple: Tuple) {
        self.note_unknown(relation);
        self.queue(relation, tuple, false);
    }

    /// Count (and warn once about) a legacy ingest into an unknown relation.
    fn note_unknown(&mut self, relation: &str) {
        if self.known_relation(relation) {
            return;
        }
        self.stats.unknown_relation_inserts += 1;
        if self.warned_unknown.insert(relation.to_string()) {
            let suggestion = match self.suggest_relation(relation) {
                Some(s) => format!("; did you mean '{s}'?"),
                None => String::new(),
            };
            eprintln!(
                "[cologne-datalog] warning: tuple queued into unknown relation \
                 '{relation}' (no rule or schema mentions it){suggestion}"
            );
        }
    }

    /// Intern and enqueue one external delta.
    fn queue(&mut self, relation: &str, tuple: Tuple, insert: bool) {
        let rel = self.rel_id(relation);
        let row = IRow::from_tuple(&tuple, &mut self.interner.strs);
        self.pending.push_back(IDelta { rel, row, insert });
    }

    /// Replace the contents of a base relation with `tuples`, queueing the
    /// necessary insertions and deletions (used when a monitoring layer
    /// refreshes tables such as `vm` or `host`).
    pub fn set_relation(&mut self, relation: &str, tuples: Vec<Tuple>) {
        self.note_unknown(relation);
        let current: Vec<Tuple> = self
            .store_by_name(relation)
            .map(|s| s.sorted_pubs(&self.interner.strs))
            .unwrap_or_default();
        let new_set: HashSet<&Tuple> = tuples.iter().collect();
        let old_set: HashSet<&Tuple> = current.iter().collect();
        for t in &current {
            if !new_set.contains(t) {
                self.queue(relation, t.clone(), false);
            }
        }
        for t in &tuples {
            if !old_set.contains(t) {
                self.queue(relation, t.clone(), true);
            }
        }
    }

    /// Visible tuples of a relation (sorted, deterministic).
    pub fn tuples(&self, relation: &str) -> Vec<Tuple> {
        self.store_by_name(relation)
            .map(|s| s.sorted_pubs(&self.interner.strs))
            .unwrap_or_default()
    }

    /// True if the relation currently contains the tuple.
    pub fn contains(&self, relation: &str, tuple: &Tuple) -> bool {
        let Some(store) = self.store_by_name(relation) else {
            return false;
        };
        // A tuple containing a never-interned string cannot be stored.
        match IRow::lookup_tuple(tuple, &self.interner.strs) {
            Some(row) => store.contains_row(&row),
            None => false,
        }
    }

    /// Number of visible tuples in a relation — O(1) from the store's
    /// maintained visible count.
    pub fn relation_len(&self, relation: &str) -> usize {
        self.store_by_name(relation)
            .map(|s| s.visible_len())
            .unwrap_or(0)
    }

    /// Borrowing iterator over the visible tuples of a relation, in
    /// unspecified order (use [`Engine::tuples`] when a deterministic order
    /// matters). No allocation, no cloning.
    pub fn scan(&self, relation: &str) -> impl Iterator<Item = &Tuple> {
        let strs = &self.interner.strs;
        self.store_by_name(relation)
            .into_iter()
            .flat_map(move |s| s.scan_pubs(strs))
    }

    /// Names of all relations that currently exist.
    pub fn relation_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self
            .exists
            .iter()
            .enumerate()
            .filter(|(_, &e)| e)
            .map(|(i, _)| self.interner.rels.resolve(i as u32).to_string())
            .collect();
        names.sort();
        names
    }

    /// Borrowed names of all relations that currently exist, sorted. The
    /// allocation-light counterpart of [`Engine::relation_names`].
    pub fn relation_names_ref(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self
            .exists
            .iter()
            .enumerate()
            .filter(|(_, &e)| e)
            .map(|(i, _)| self.interner.rels.resolve(i as u32))
            .collect();
        names.sort_unstable();
        names
    }

    /// Drain tuples addressed to other nodes (produced by located rule heads).
    pub fn take_outbox(&mut self) -> Vec<RemoteTuple> {
        std::mem::take(&mut self.outbox)
    }

    /// Process all pending deltas to a local fixpoint.
    ///
    /// Returns the number of head updates applied. Remote tuples produced by
    /// located heads are collected in the outbox (see [`Engine::take_outbox`]).
    pub fn run(&mut self) -> u64 {
        let before = self.stats.updates;
        loop {
            let mut dirty: HashSet<usize> = HashSet::new();
            while let Some(delta) = self.pending.pop_front() {
                self.stats.external_deltas += 1;
                self.apply_delta(delta, &mut dirty);
            }
            if dirty.is_empty() {
                break;
            }
            let mut dirty_list: Vec<usize> = dirty.into_iter().collect();
            dirty_list.sort_unstable();
            for rule_idx in dirty_list {
                self.recompute_rule(rule_idx);
            }
            if self.pending.is_empty() {
                break;
            }
        }
        self.flush_delta();
        self.stats.updates - before
    }

    /// Fold the dense per-run delta counters into the name-keyed summary.
    fn flush_delta(&mut self) {
        for &rel in &self.delta_touched {
            let iu = rel as usize;
            let entry = self
                .delta
                .changes
                .entry(self.interner.rels.resolve(rel).to_string())
                .or_default();
            entry.inserted += self.delta_ins[iu];
            entry.deleted += self.delta_del[iu];
            self.delta_ins[iu] = 0;
            self.delta_del[iu] = 0;
        }
        self.delta_touched.clear();
    }

    fn apply_delta(&mut self, delta: IDelta, dirty: &mut HashSet<usize>) {
        let iu = delta.rel as usize;
        self.exists[iu] = true;
        let adj = if delta.insert { 1 } else { -1 };
        let change = self.stores[iu].adjust(delta.row.clone(), adj);
        let became_visible = match change {
            Some(v) => v,
            None => return, // multiplicity changed but visibility did not
        };
        self.stats.updates += 1;
        if self.delta_ins[iu] == 0 && self.delta_del[iu] == 0 {
            self.delta_touched.push(delta.rel);
        }
        if became_visible {
            self.delta_ins[iu] += 1;
        } else {
            self.delta_del[iu] += 1;
        }

        let rule_indices = self.trigger[iu].clone();
        for rule_idx in rule_indices {
            if self.plans[rule_idx].recompute {
                dirty.insert(rule_idx);
                continue;
            }
            self.fire_plan(rule_idx, delta.rel, &delta.row, became_visible);
        }
    }

    /// Fire a non-recompute rule's pinned plan for one delta row.
    fn fire_plan(&mut self, rule_idx: usize, rel: u32, row: &IRow, insert: bool) {
        let mut results: Vec<IVal> = Vec::new();
        let n_slots = self.plans[rule_idx].n_slots;
        {
            let plans = &self.plans;
            let stores = &mut self.stores;
            let Some((_, ops)) = plans[rule_idx].pinned.iter().find(|(r, _)| *r == rel) else {
                return;
            };
            plan::execute(ops, n_slots, Some(row), stores, &mut results);
        }
        let mut head_changes: Vec<IRow> = Vec::new();
        {
            let head = &self.plans[rule_idx].head;
            for chunk in results.chunks(n_slots) {
                self.stats.derivations += 1;
                if let Some(out) = build_head_row(head, chunk) {
                    head_changes.push(out);
                }
            }
        }
        for out in head_changes {
            self.emit(rule_idx, out, insert);
        }
    }

    /// Recompute an aggregate (or repeated-relation) rule from scratch and
    /// apply the diff against its previous output.
    fn recompute_rule(&mut self, rule_idx: usize) {
        self.stats.aggregate_recomputes += 1;
        let mut results: Vec<IVal> = Vec::new();
        let n_slots = self.plans[rule_idx].n_slots;
        {
            let plans = &self.plans;
            let stores = &mut self.stores;
            plan::execute(&plans[rule_idx].full, n_slots, None, stores, &mut results);
        }
        let new_output: Vec<IRow> = if self.plans[rule_idx].aggregate {
            self.aggregate_head(rule_idx, &results, n_slots)
        } else {
            let mut out = Vec::new();
            {
                let head = &self.plans[rule_idx].head;
                for chunk in results.chunks(n_slots) {
                    self.stats.derivations += 1;
                    if let Some(row) = build_head_row(head, chunk) {
                        out.push(row);
                    }
                }
            }
            out.sort_by(|a, b| a.cmp_public(b, &self.interner.strs));
            out.dedup();
            out
        };
        // Both the previous and the new output are sorted (and deduplicated)
        // under `cmp_public`, so the diff is a single merge walk — no hash
        // sets, no per-row rehashing.
        let mut deletions: Vec<IRow> = Vec::new();
        let mut insertions: Vec<IRow> = Vec::new();
        {
            let prev = self
                .prev_output
                .get(&rule_idx)
                .map_or(&[][..], Vec::as_slice);
            let strs = &self.interner.strs;
            let (mut i, mut j) = (0, 0);
            while i < prev.len() && j < new_output.len() {
                match prev[i].cmp_public(&new_output[j], strs) {
                    std::cmp::Ordering::Less => {
                        deletions.push(prev[i].clone());
                        i += 1;
                    }
                    std::cmp::Ordering::Greater => {
                        insertions.push(new_output[j].clone());
                        j += 1;
                    }
                    std::cmp::Ordering::Equal => {
                        i += 1;
                        j += 1;
                    }
                }
            }
            deletions.extend_from_slice(&prev[i..]);
            insertions.extend_from_slice(&new_output[j..]);
        }
        self.prev_output.insert(rule_idx, new_output);
        for t in deletions {
            self.emit(rule_idx, t, false);
        }
        for t in insertions {
            self.emit(rule_idx, t, true);
        }
    }

    /// Compute the grouped, aggregated head rows of a rule.
    fn aggregate_head(&mut self, rule_idx: usize, results: &[IVal], n_slots: usize) -> Vec<IRow> {
        let head = &self.plans[rule_idx].head;
        let agg_count = head
            .cols
            .iter()
            .filter(|c| matches!(c, HeadCol::Agg(_, _) | HeadCol::AggUnbound))
            .count();
        // group key -> per-aggregate collected values
        let mut groups: HashMap<Vec<IVal>, Vec<Vec<IVal>>> = HashMap::new();
        for chunk in results.chunks(n_slots) {
            self.stats.derivations += 1;
            let mut key = Vec::new();
            let mut ok = true;
            let mut collected: Vec<IVal> = Vec::with_capacity(agg_count);
            for col in &head.cols {
                match col {
                    HeadCol::Const(v) => key.push(*v),
                    HeadCol::Slot(s) => key.push(chunk[*s as usize]),
                    HeadCol::Agg(_, s) => collected.push(chunk[*s as usize]),
                    HeadCol::Unbound | HeadCol::AggUnbound => {
                        ok = false;
                        break;
                    }
                }
            }
            if !ok {
                continue;
            }
            let entry = groups
                .entry(key)
                .or_insert_with(|| vec![Vec::new(); agg_count]);
            for (slot, v) in entry.iter_mut().zip(collected) {
                slot.push(v);
            }
        }
        let strs = &self.interner.strs;
        let mut out = Vec::with_capacity(groups.len());
        for (key, values_per_agg) in groups {
            let mut vals = Vec::with_capacity(head.cols.len());
            let mut key_iter = key.into_iter();
            let mut agg_iter = values_per_agg.into_iter();
            for col in &head.cols {
                match col {
                    HeadCol::Const(_) | HeadCol::Slot(_) => {
                        vals.push(key_iter.next().expect("group key arity"))
                    }
                    HeadCol::Agg(func, _) => {
                        let collected: Vec<Value> = agg_iter
                            .next()
                            .expect("aggregate arity")
                            .into_iter()
                            .map(|v| v.to_value(strs))
                            .collect();
                        let result = func.compute(&collected);
                        vals.push(
                            IVal::lookup(&result, strs)
                                .expect("aggregates cannot mint new strings"),
                        );
                    }
                    HeadCol::Unbound | HeadCol::AggUnbound => {
                        unreachable!("rows with unbound head columns were skipped")
                    }
                }
            }
            out.push(IRow::from_vals(&vals));
        }
        out.sort_by(|a, b| a.cmp_public(b, strs));
        out
    }

    /// Apply a head-row change: local insert/delete, or remote send when
    /// the head is located at another node.
    fn emit(&mut self, rule_idx: usize, row: IRow, insert: bool) {
        let head: &HeadPlan = &self.plans[rule_idx].head;
        if head.located {
            if let Some(IVal::Addr(dest)) = row.as_slice().first() {
                if *dest != self.node.0 {
                    self.stats.remote_sends += 1;
                    self.outbox.push(RemoteTuple {
                        dest: NodeId(*dest),
                        relation: self.interner.rels.resolve(head.rel).to_string(),
                        tuple: row.to_tuple(&self.interner.strs),
                        insert,
                    });
                    return;
                }
            }
        }
        let rel = head.rel;
        self.pending.push_back(IDelta { rel, row, insert });
    }

    /// Evaluate an ad-hoc body (query) against the current database and
    /// return the resulting bindings. Used by the Cologne runtime when
    /// grounding solver rules.
    ///
    /// Queries are interpreted (reference-style) over the public tuple
    /// forms: they are rare, ad-hoc and uncompiled, so plan compilation
    /// would cost more than it saves.
    pub fn query(&self, body: &[BodyItem]) -> Vec<Bindings> {
        let mut frontier = vec![Bindings::new()];
        for item in body {
            if frontier.is_empty() {
                return frontier;
            }
            let mut next = Vec::with_capacity(frontier.len());
            match item {
                BodyItem::Atom(atom) => {
                    for b in &frontier {
                        for t in self.scan(&atom.relation) {
                            let mut nb = b.clone();
                            if atom.match_tuple(t, &mut nb) {
                                next.push(nb);
                            }
                        }
                    }
                }
                BodyItem::Filter(expr) => {
                    for b in &frontier {
                        if expr.eval_bool(b).unwrap_or(false) {
                            next.push(b.clone());
                        }
                    }
                }
                BodyItem::Assign(var, expr) => {
                    for b in &frontier {
                        if let Ok(v) = expr.eval(b) {
                            let mut nb = b.clone();
                            nb.set(var, v);
                            next.push(nb);
                        }
                    }
                }
            }
            frontier = next;
        }
        frontier
    }
}

/// Instantiate a simple (non-aggregate) head row; `None` when a head
/// variable is unbound, matching the reference's failed instantiation.
fn build_head_row(head: &HeadPlan, chunk: &[IVal]) -> Option<IRow> {
    let mut vals = Vec::with_capacity(head.cols.len());
    for col in &head.cols {
        match col {
            HeadCol::Const(v) => vals.push(*v),
            HeadCol::Slot(s) => vals.push(chunk[*s as usize]),
            HeadCol::Unbound => return None,
            HeadCol::Agg(_, _) | HeadCol::AggUnbound => {
                unreachable!("aggregate heads are handled by recompute_rule")
            }
        }
    }
    Some(IRow::from_vals(&vals))
}
#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Expr, Op, Term};
    use crate::rule::{AggFunc, Atom, Head, HeadArg};
    use crate::schema::SchemaError;

    fn int_tuple(vals: &[i64]) -> Tuple {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    fn engine() -> Engine {
        Engine::new(NodeId(0))
    }

    /// path(X,Y) <- link(X,Y);  path(X,Z) <- link(X,Y), path(Y,Z)
    fn transitive_closure_rules() -> Vec<Rule> {
        vec![
            Rule::new(
                "r1",
                Head::simple("path", vec![Term::var("X"), Term::var("Y")]),
                vec![BodyItem::Atom(Atom::new(
                    "link",
                    vec![Term::var("X"), Term::var("Y")],
                ))],
            ),
            Rule::new(
                "r2",
                Head::simple("path", vec![Term::var("X"), Term::var("Z")]),
                vec![
                    BodyItem::Atom(Atom::new("link", vec![Term::var("X"), Term::var("Y")])),
                    BodyItem::Atom(Atom::new("path", vec![Term::var("Y"), Term::var("Z")])),
                ],
            ),
        ]
    }

    #[test]
    fn transitive_closure_incremental_insert() {
        let mut e = engine();
        e.add_rules(transitive_closure_rules());
        e.insert("link", int_tuple(&[1, 2]));
        e.insert("link", int_tuple(&[2, 3]));
        e.run();
        assert!(e.contains("path", &int_tuple(&[1, 2])));
        assert!(e.contains("path", &int_tuple(&[2, 3])));
        assert!(e.contains("path", &int_tuple(&[1, 3])));
        // now extend the chain
        e.insert("link", int_tuple(&[3, 4]));
        e.run();
        assert!(e.contains("path", &int_tuple(&[1, 4])));
        assert!(e.contains("path", &int_tuple(&[2, 4])));
    }

    #[test]
    fn transitive_closure_incremental_delete() {
        let mut e = engine();
        e.add_rules(transitive_closure_rules());
        for l in [[1, 2], [2, 3], [3, 4]] {
            e.insert("link", int_tuple(&l));
        }
        e.run();
        assert!(e.contains("path", &int_tuple(&[1, 4])));
        e.delete("link", int_tuple(&[2, 3]));
        e.run();
        assert!(e.contains("path", &int_tuple(&[1, 2])));
        assert!(e.contains("path", &int_tuple(&[3, 4])));
        assert!(!e.contains("path", &int_tuple(&[1, 3])));
        assert!(!e.contains("path", &int_tuple(&[1, 4])));
        assert!(!e.contains("path", &int_tuple(&[2, 4])));
    }

    #[test]
    fn filters_and_assignments() {
        // big(X, Y2) <- item(X, Y), Y > 10, Y2 := Y * 2
        let mut e = engine();
        e.add_rule(Rule::new(
            "r1",
            Head::simple("big", vec![Term::var("X"), Term::var("Y2")]),
            vec![
                BodyItem::Atom(Atom::new("item", vec![Term::var("X"), Term::var("Y")])),
                BodyItem::Filter(Expr::bin(Op::Gt, Expr::var("Y"), Expr::int(10))),
                BodyItem::Assign(
                    "Y2".into(),
                    Expr::bin(Op::Mul, Expr::var("Y"), Expr::int(2)),
                ),
            ],
        ));
        e.insert("item", int_tuple(&[1, 5]));
        e.insert("item", int_tuple(&[2, 20]));
        e.run();
        assert_eq!(e.relation_len("big"), 1);
        assert!(e.contains("big", &int_tuple(&[2, 40])));
    }

    #[test]
    fn aggregate_sum_maintained_incrementally() {
        // hostCpu(H, SUM<C>) <- assign(V, H, C)
        let mut e = engine();
        e.add_rule(Rule::new(
            "d1",
            Head {
                relation: "hostCpu".into(),
                args: vec![
                    HeadArg::Term(Term::var("H")),
                    HeadArg::Agg(AggFunc::Sum, "C".into()),
                ],
                located: false,
            },
            vec![BodyItem::Atom(Atom::new(
                "assign",
                vec![Term::var("V"), Term::var("H"), Term::var("C")],
            ))],
        ));
        e.insert("assign", int_tuple(&[1, 10, 30]));
        e.insert("assign", int_tuple(&[2, 10, 20]));
        e.insert("assign", int_tuple(&[3, 11, 40]));
        e.run();
        assert!(e.contains("hostCpu", &int_tuple(&[10, 50])));
        assert!(e.contains("hostCpu", &int_tuple(&[11, 40])));
        // deletion updates the aggregate
        e.delete("assign", int_tuple(&[2, 10, 20]));
        e.run();
        assert!(e.contains("hostCpu", &int_tuple(&[10, 30])));
        assert!(!e.contains("hostCpu", &int_tuple(&[10, 50])));
        assert_eq!(e.relation_len("hostCpu"), 2);
    }

    #[test]
    fn aggregate_feeding_another_rule() {
        // count(C) <- x(V);  alarm(C) <- count(C), C >= 2
        let mut e = engine();
        e.add_rule(Rule::new(
            "d1",
            Head {
                relation: "count".into(),
                args: vec![HeadArg::Agg(AggFunc::Count, "V".into())],
                located: false,
            },
            vec![BodyItem::Atom(Atom::new("x", vec![Term::var("V")]))],
        ));
        e.add_rule(Rule::new(
            "r1",
            Head::simple("alarm", vec![Term::var("C")]),
            vec![
                BodyItem::Atom(Atom::new("count", vec![Term::var("C")])),
                BodyItem::Filter(Expr::bin(Op::Ge, Expr::var("C"), Expr::int(2))),
            ],
        ));
        e.insert("x", int_tuple(&[1]));
        e.run();
        assert_eq!(e.relation_len("alarm"), 0);
        e.insert("x", int_tuple(&[2]));
        e.run();
        assert!(e.contains("alarm", &int_tuple(&[2])));
        e.delete("x", int_tuple(&[1]));
        e.run();
        assert_eq!(e.relation_len("alarm"), 0);
    }

    #[test]
    fn located_head_goes_to_outbox() {
        // ping(@Y, X) <- link(@X, Y)
        let mut e = engine();
        e.add_rule(Rule::new(
            "r1",
            Head {
                relation: "ping".into(),
                args: vec![HeadArg::Term(Term::var("Y")), HeadArg::Term(Term::var("X"))],
                located: true,
            },
            vec![BodyItem::Atom(Atom::located(
                "link",
                vec![Term::var("X"), Term::var("Y")],
            ))],
        ));
        e.insert("link", vec![Value::Addr(NodeId(0)), Value::Addr(NodeId(7))]);
        e.run();
        let out = e.take_outbox();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].dest, NodeId(7));
        assert_eq!(out[0].relation, "ping");
        assert!(out[0].insert);
        assert!(out[0].wire_size() > 0);
        // nothing materialized locally
        assert_eq!(e.relation_len("ping"), 0);
        assert_eq!(e.stats().remote_sends, 1);
    }

    #[test]
    fn located_head_to_self_stays_local() {
        let mut e = engine();
        e.add_rule(Rule::new(
            "r1",
            Head {
                relation: "echo".into(),
                args: vec![HeadArg::Term(Term::var("X"))],
                located: true,
            },
            vec![BodyItem::Atom(Atom::located(
                "link",
                vec![Term::var("X"), Term::var("Y")],
            ))],
        ));
        e.insert("link", vec![Value::Addr(NodeId(0)), Value::Addr(NodeId(7))]);
        e.run();
        assert!(e.take_outbox().is_empty());
        assert!(e.contains("echo", &vec![Value::Addr(NodeId(0))]));
    }

    #[test]
    fn set_relation_diffs() {
        let mut e = engine();
        e.insert("vm", int_tuple(&[1, 50]));
        e.insert("vm", int_tuple(&[2, 60]));
        e.run();
        e.set_relation("vm", vec![int_tuple(&[2, 65]), int_tuple(&[3, 10])]);
        e.run();
        let tuples = e.tuples("vm");
        assert_eq!(tuples, vec![int_tuple(&[2, 65]), int_tuple(&[3, 10])]);
    }

    #[test]
    fn query_evaluates_ad_hoc_bodies() {
        let mut e = engine();
        e.insert("vm", int_tuple(&[1, 50]));
        e.insert("host", int_tuple(&[10, 20]));
        e.run();
        let body = vec![
            BodyItem::Atom(Atom::new("vm", vec![Term::var("V"), Term::var("C")])),
            BodyItem::Atom(Atom::new("host", vec![Term::var("H"), Term::var("HC")])),
        ];
        let results = e.query(&body);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].get("V"), Some(&Value::Int(1)));
        assert_eq!(results[0].get("H"), Some(&Value::Int(10)));
    }

    #[test]
    fn duplicate_inserts_do_not_double_derive() {
        let mut e = engine();
        e.add_rule(Rule::new(
            "r1",
            Head::simple("out", vec![Term::var("X")]),
            vec![BodyItem::Atom(Atom::new("in", vec![Term::var("X")]))],
        ));
        e.insert("in", int_tuple(&[1]));
        e.insert("in", int_tuple(&[1]));
        e.run();
        assert_eq!(e.relation_len("out"), 1);
        // removing one copy keeps the fact visible; removing both hides it
        e.delete("in", int_tuple(&[1]));
        e.run();
        assert!(e.contains("out", &int_tuple(&[1])));
        e.delete("in", int_tuple(&[1]));
        e.run();
        assert!(!e.contains("out", &int_tuple(&[1])));
    }

    #[test]
    fn stats_are_populated() {
        let mut e = engine();
        e.add_rules(transitive_closure_rules());
        e.insert("link", int_tuple(&[1, 2]));
        e.insert("link", int_tuple(&[2, 3]));
        e.run();
        let s = e.stats();
        assert!(s.external_deltas >= 2);
        assert!(s.derivations > 0);
        assert!(s.updates > 0);
    }

    #[test]
    fn delta_summary_tracks_visibility_changes() {
        let mut e = engine();
        e.add_rules(transitive_closure_rules());
        e.insert("link", int_tuple(&[1, 2]));
        e.insert("link", int_tuple(&[2, 3]));
        e.run();
        let delta = e.take_delta_summary();
        assert!(!delta.is_empty());
        assert_eq!(delta.changes["link"].inserted, 2);
        assert_eq!(delta.changes["link"].deleted, 0);
        // derived updates are part of the summary too
        assert_eq!(delta.changes["path"].inserted, 3);
        assert!(!delta.is_clean("link"));
        assert!(delta.is_clean("unrelated"));
        assert_eq!(delta.total_changes(), 5);
        assert_eq!(
            delta.dirty_relations().collect::<Vec<_>>(),
            vec!["link", "path"]
        );
        // the checkpoint resets the summary
        assert!(e.delta_summary().is_empty());
        // a deletion dirties both the base and the derived relation
        e.delete("link", int_tuple(&[2, 3]));
        e.run();
        let delta = e.take_delta_summary();
        assert_eq!(delta.changes["link"].deleted, 1);
        assert_eq!(delta.changes["path"].deleted, 2);
    }

    #[test]
    fn delta_summary_ignores_multiplicity_only_changes() {
        let mut e = engine();
        e.insert("in", int_tuple(&[1]));
        e.run();
        e.take_delta_summary();
        // duplicate insert: multiplicity 2, visibility unchanged
        e.insert("in", int_tuple(&[1]));
        e.run();
        assert!(e.delta_summary().is_empty());
        // one delete: multiplicity 1, still visible
        e.delete("in", int_tuple(&[1]));
        e.run();
        assert!(e.delta_summary().is_empty());
        // second delete: tuple disappears
        e.delete("in", int_tuple(&[1]));
        e.run();
        assert_eq!(e.delta_summary().changes["in"].deleted, 1);
    }

    #[test]
    fn set_relation_with_identical_contents_is_clean() {
        let mut e = engine();
        e.insert("vm", int_tuple(&[1, 50]));
        e.insert("vm", int_tuple(&[2, 60]));
        e.run();
        e.take_delta_summary();
        // a monitoring refresh with unchanged contents produces no deltas
        e.set_relation("vm", vec![int_tuple(&[1, 50]), int_tuple(&[2, 60])]);
        e.run();
        assert!(e.delta_summary().is_empty());
    }

    #[test]
    fn unknown_relation_inserts_are_counted_not_dropped() {
        let mut e = engine();
        e.add_rules(transitive_closure_rules());
        // "lnik" is a typo: no rule mentions it, no facts exist under it.
        e.insert("lnik", int_tuple(&[1, 2]));
        e.delete("lnik", int_tuple(&[1, 2]));
        assert_eq!(e.stats().unknown_relation_inserts, 2);
        // known relations (rule bodies/heads) do not count
        e.insert("link", int_tuple(&[1, 2]));
        e.insert("path", int_tuple(&[9, 9]));
        assert_eq!(e.stats().unknown_relation_inserts, 2);
        // legacy behavior preserved: the tuple was still queued
        e.run();
        assert!(e.contains("lnik", &int_tuple(&[1, 2])) || e.relation_len("lnik") == 0);
        assert_eq!(e.relation_len("link"), 1);
    }

    #[test]
    fn try_insert_rejects_unknown_relation_with_suggestion() {
        let mut e = engine();
        e.add_rules(transitive_closure_rules());
        let err = e.try_insert("lnik", int_tuple(&[1, 2])).unwrap_err();
        match err {
            IngestError::UnknownRelation {
                relation,
                suggestion,
            } => {
                assert_eq!(relation, "lnik");
                assert_eq!(suggestion.as_deref(), Some("link"));
            }
            other => panic!("unexpected error: {other:?}"),
        }
        // nothing was queued
        e.run();
        assert_eq!(e.relation_len("lnik"), 0);
        assert_eq!(e.stats().unknown_relation_inserts, 0);
        // valid ingest goes through
        e.try_insert("link", int_tuple(&[1, 2])).unwrap();
        e.run();
        assert!(e.contains("path", &int_tuple(&[1, 2])));
        e.try_delete("link", int_tuple(&[1, 2])).unwrap();
        e.run();
        assert!(!e.contains("path", &int_tuple(&[1, 2])));
    }

    #[test]
    fn try_insert_enforces_schemas() {
        use crate::schema::{SchemaSet, TupleSchema};
        use crate::value::ValueKind;
        let mut e = engine();
        let mut schemas = SchemaSet::new();
        schemas.insert(TupleSchema::new(
            "link",
            vec![ValueKind::Addr, ValueKind::Addr],
        ));
        e.set_schemas(schemas);
        assert!(e.schemas().contains("link"));
        // wrong arity
        let err = e
            .try_insert("link", vec![Value::Addr(NodeId(0))])
            .unwrap_err();
        assert!(matches!(
            err,
            IngestError::Schema(SchemaError::Arity { .. })
        ));
        // wrong kind
        let err = e
            .try_insert("link", vec![Value::Addr(NodeId(0)), Value::Int(1)])
            .unwrap_err();
        assert!(matches!(
            err,
            IngestError::Schema(SchemaError::Kind { position: 1, .. })
        ));
        // well-formed tuple accepted (schema also makes the relation known)
        e.try_insert("link", vec![Value::Addr(NodeId(0)), Value::Addr(NodeId(1))])
            .unwrap();
        e.run();
        assert_eq!(e.relation_len("link"), 1);
    }

    #[test]
    fn scan_and_relation_names_ref_borrow() {
        let mut e = engine();
        e.insert("b", int_tuple(&[2]));
        e.insert("a", int_tuple(&[1]));
        e.run();
        assert_eq!(e.relation_names_ref(), vec!["a", "b"]);
        let scanned: Vec<&Tuple> = e.scan("a").collect();
        assert_eq!(scanned, vec![&int_tuple(&[1])]);
        assert_eq!(e.scan("missing").count(), 0);
    }

    #[test]
    fn relation_names_sorted() {
        let mut e = engine();
        e.insert("b", int_tuple(&[1]));
        e.insert("a", int_tuple(&[1]));
        e.run();
        assert_eq!(e.relation_names(), vec!["a".to_string(), "b".to_string()]);
    }
}
