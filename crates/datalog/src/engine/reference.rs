//! The reference interpreter: the pre-index, pre-interning engine.
//!
//! This is the original scan-everything implementation of the engine,
//! preserved verbatim (mirroring the solver's `solve_reference` pattern from
//! PR 2) as the executable specification of engine semantics: pipelined
//! semi-naïve evaluation via interpreted [`crate::Atom::match_tuple`] walks
//! over `String`-keyed relations, with aggregate and repeated-relation rules
//! maintained by recompute-and-diff.
//!
//! It exists for differential testing (it is exported, but nothing in the
//! production pipeline uses it). The equivalence suite asserts that the
//! production engine ([`crate::Engine`]) produces byte-identical fixpoint
//! tables, [`DeltaSummary`] contents and outbox multisets on random rule
//! sets and on the paper's three use-case programs.

use std::collections::{HashMap, HashSet, VecDeque};

use super::{DeltaSummary, EngineStats, RemoteTuple};
use crate::expr::{Bindings, Term};
use crate::rule::{BodyItem, HeadArg, Rule};
use crate::schema::{did_you_mean, IngestError, SchemaSet};
use crate::tuple::{Relation, Tuple};
use crate::value::{NodeId, Value};

#[derive(Debug, Clone)]
struct Delta {
    relation: String,
    tuple: Tuple,
    insert: bool,
}

/// The per-node Datalog engine.
pub struct ReferenceEngine {
    node: NodeId,
    relations: HashMap<String, Relation>,
    rules: Vec<Rule>,
    /// relation name -> indices of rules that mention it in their body
    trigger: HashMap<String, Vec<usize>>,
    /// rules maintained by recompute-and-diff (aggregates, repeated body
    /// relations)
    recompute_rules: HashSet<usize>,
    /// previous output of recompute rules
    prev_output: HashMap<usize, Vec<Tuple>>,
    pending: VecDeque<Delta>,
    outbox: Vec<RemoteTuple>,
    stats: EngineStats,
    /// Visibility changes since the last [`ReferenceEngine::take_delta_summary`].
    delta: DeltaSummary,
    /// Relation names mentioned by any installed rule (head or body) — the
    /// IDB part of the unknown-relation check.
    rule_relations: HashSet<String>,
    /// Declared relation schemas, checked by the validated ingest path.
    schemas: SchemaSet,
    /// Unknown relations already warned about (log-once).
    warned_unknown: HashSet<String>,
}

impl ReferenceEngine {
    /// Create an engine for the given node.
    pub fn new(node: NodeId) -> Self {
        ReferenceEngine {
            node,
            relations: HashMap::new(),
            rules: Vec::new(),
            trigger: HashMap::new(),
            recompute_rules: HashSet::new(),
            prev_output: HashMap::new(),
            pending: VecDeque::new(),
            outbox: Vec::new(),
            stats: EngineStats::default(),
            delta: DeltaSummary::default(),
            rule_relations: HashSet::new(),
            schemas: SchemaSet::new(),
            warned_unknown: HashSet::new(),
        }
    }

    /// The node this engine runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// ReferenceEngine statistics so far.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Visibility changes accumulated since the last
    /// [`ReferenceEngine::take_delta_summary`] (cumulative, unlike the per-run
    /// counters of [`EngineStats`], which never reset).
    pub fn delta_summary(&self) -> &DeltaSummary {
        &self.delta
    }

    /// Take the accumulated delta summary and start a fresh checkpoint.
    ///
    /// The Cologne runtime calls this right before grounding a COP: the
    /// returned summary describes exactly what changed since the previous
    /// grounding, so clean relations can keep their previously grounded
    /// variables and constraints.
    pub fn take_delta_summary(&mut self) -> DeltaSummary {
        std::mem::take(&mut self.delta)
    }

    /// Install (or replace) the declared relation schemas. Tuples entering
    /// through [`ReferenceEngine::try_insert`]/[`ReferenceEngine::try_delete`] are validated
    /// against them; relations without a schema accept any tuple shape.
    pub fn set_schemas(&mut self, schemas: SchemaSet) {
        self.schemas = schemas;
    }

    /// The declared relation schemas.
    pub fn schemas(&self) -> &SchemaSet {
        &self.schemas
    }

    /// Install a rule. Rules may be added before or after facts.
    pub fn add_rule(&mut self, rule: Rule) {
        let idx = self.rules.len();
        self.rule_relations.insert(rule.head.relation.clone());
        for rel in rule.body_relations() {
            self.rule_relations.insert(rel.to_string());
        }
        let mut body_rels: Vec<&str> = rule.body_relations();
        let repeats = {
            let mut sorted = body_rels.clone();
            sorted.sort_unstable();
            sorted.windows(2).any(|w| w[0] == w[1])
        };
        if rule.is_aggregate() || repeats {
            self.recompute_rules.insert(idx);
        }
        body_rels.sort_unstable();
        body_rels.dedup();
        for rel in body_rels {
            self.trigger.entry(rel.to_string()).or_default().push(idx);
        }
        self.rules.push(rule);
    }

    /// Install several rules.
    pub fn add_rules(&mut self, rules: impl IntoIterator<Item = Rule>) {
        for r in rules {
            self.add_rule(r);
        }
    }

    /// Number of installed rules.
    pub fn num_rules(&self) -> usize {
        self.rules.len()
    }

    /// True when the engine has any reason to believe the relation exists:
    /// facts are stored under it, a rule mentions it, or a schema declares
    /// it.
    pub fn known_relation(&self, relation: &str) -> bool {
        self.relations.contains_key(relation)
            || self.rule_relations.contains(relation)
            || self.schemas.contains(relation)
    }

    /// A declared relation with a name similar to `relation`, for
    /// did-you-mean diagnostics.
    pub fn suggest_relation(&self, relation: &str) -> Option<String> {
        let mut names: Vec<&str> = self
            .relations
            .keys()
            .map(String::as_str)
            .chain(self.rule_relations.iter().map(String::as_str))
            .chain(self.schemas.names())
            .collect();
        names.sort_unstable();
        names.dedup();
        did_you_mean(relation, names)
    }

    /// Validate a tuple for ingestion: the relation must be known (see
    /// [`ReferenceEngine::known_relation`]) and the tuple must match its schema.
    pub fn validate(&self, relation: &str, tuple: &Tuple) -> Result<(), IngestError> {
        if !self.known_relation(relation) {
            return Err(IngestError::UnknownRelation {
                relation: relation.to_string(),
                suggestion: self.suggest_relation(relation),
            });
        }
        self.schemas.check(relation, tuple)?;
        Ok(())
    }

    /// Queue an insertion after validating it (see [`ReferenceEngine::validate`]).
    /// Nothing is queued on error, so malformed input — above all tuples
    /// received from remote nodes — cannot corrupt engine state.
    pub fn try_insert(&mut self, relation: &str, tuple: Tuple) -> Result<(), IngestError> {
        self.validate(relation, &tuple)?;
        self.queue(relation, tuple, true);
        Ok(())
    }

    /// Queue a deletion after validating it (see [`ReferenceEngine::try_insert`]).
    pub fn try_delete(&mut self, relation: &str, tuple: Tuple) -> Result<(), IngestError> {
        self.validate(relation, &tuple)?;
        self.queue(relation, tuple, false);
        Ok(())
    }

    /// Queue an insertion of a base (or received) tuple.
    ///
    /// Legacy unchecked entry point: the tuple is queued whether or not the
    /// relation is known, but an unknown relation is counted into
    /// [`EngineStats::unknown_relation_inserts`] and warned about once —
    /// historically such a typo created a silent, never-read relation.
    /// Prefer [`ReferenceEngine::try_insert`].
    pub fn insert(&mut self, relation: &str, tuple: Tuple) {
        self.note_unknown(relation);
        self.queue(relation, tuple, true);
    }

    /// Queue a deletion of a base (or received) tuple. Legacy unchecked
    /// entry point; see [`ReferenceEngine::insert`] and prefer [`ReferenceEngine::try_delete`].
    pub fn delete(&mut self, relation: &str, tuple: Tuple) {
        self.note_unknown(relation);
        self.queue(relation, tuple, false);
    }

    /// Count (and warn once about) a legacy ingest into an unknown relation.
    fn note_unknown(&mut self, relation: &str) {
        if self.known_relation(relation) {
            return;
        }
        self.stats.unknown_relation_inserts += 1;
        if self.warned_unknown.insert(relation.to_string()) {
            let suggestion = match self.suggest_relation(relation) {
                Some(s) => format!("; did you mean '{s}'?"),
                None => String::new(),
            };
            eprintln!(
                "[cologne-datalog] warning: tuple queued into unknown relation \
                 '{relation}' (no rule or schema mentions it){suggestion}"
            );
        }
    }

    fn queue(&mut self, relation: &str, tuple: Tuple, insert: bool) {
        self.pending.push_back(Delta {
            relation: relation.to_string(),
            tuple,
            insert,
        });
    }

    /// Replace the contents of a base relation with `tuples`, queueing the
    /// necessary insertions and deletions (used when a monitoring layer
    /// refreshes tables such as `vm` or `host`).
    pub fn set_relation(&mut self, relation: &str, tuples: Vec<Tuple>) {
        self.note_unknown(relation);
        let current: Vec<Tuple> = self
            .relations
            .get(relation)
            .map(|r| r.sorted_tuples())
            .unwrap_or_default();
        let new_set: HashSet<&Tuple> = tuples.iter().collect();
        let old_set: HashSet<&Tuple> = current.iter().collect();
        for t in &current {
            if !new_set.contains(t) {
                self.queue(relation, t.clone(), false);
            }
        }
        for t in &tuples {
            if !old_set.contains(t) {
                self.queue(relation, t.clone(), true);
            }
        }
    }

    /// Visible tuples of a relation (sorted, deterministic).
    pub fn tuples(&self, relation: &str) -> Vec<Tuple> {
        self.relations
            .get(relation)
            .map(|r| r.sorted_tuples())
            .unwrap_or_default()
    }

    /// True if the relation currently contains the tuple.
    pub fn contains(&self, relation: &str, tuple: &Tuple) -> bool {
        self.relations
            .get(relation)
            .is_some_and(|r| r.contains(tuple))
    }

    /// Number of visible tuples in a relation.
    pub fn relation_len(&self, relation: &str) -> usize {
        self.relations
            .get(relation)
            .map(|r| r.iter().count())
            .unwrap_or(0)
    }

    /// Borrowing iterator over the visible tuples of a relation, in
    /// unspecified order (use [`ReferenceEngine::tuples`] when a deterministic order
    /// matters). No allocation, no cloning.
    pub fn scan(&self, relation: &str) -> impl Iterator<Item = &Tuple> {
        self.relations
            .get(relation)
            .into_iter()
            .flat_map(|r| r.iter())
    }

    /// Names of all relations that currently exist.
    pub fn relation_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.relations.keys().cloned().collect();
        names.sort();
        names
    }

    /// Borrowed names of all relations that currently exist, sorted. The
    /// allocation-light counterpart of [`ReferenceEngine::relation_names`].
    pub fn relation_names_ref(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.relations.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// Drain tuples addressed to other nodes (produced by located rule heads).
    pub fn take_outbox(&mut self) -> Vec<RemoteTuple> {
        std::mem::take(&mut self.outbox)
    }

    /// Process all pending deltas to a local fixpoint.
    ///
    /// Returns the number of head updates applied. Remote tuples produced by
    /// located heads are collected in the outbox (see [`ReferenceEngine::take_outbox`]).
    pub fn run(&mut self) -> u64 {
        let before = self.stats.updates;
        loop {
            let mut dirty: HashSet<usize> = HashSet::new();
            while let Some(delta) = self.pending.pop_front() {
                self.stats.external_deltas += 1;
                self.apply_delta(delta, &mut dirty);
            }
            if dirty.is_empty() {
                break;
            }
            let mut dirty_list: Vec<usize> = dirty.into_iter().collect();
            dirty_list.sort_unstable();
            for rule_idx in dirty_list {
                self.recompute_rule(rule_idx);
            }
            if self.pending.is_empty() {
                break;
            }
        }
        self.stats.updates - before
    }

    fn apply_delta(&mut self, delta: Delta, dirty: &mut HashSet<usize>) {
        let rel = self.relations.entry(delta.relation.clone()).or_default();
        let change = rel.adjust(delta.tuple.clone(), if delta.insert { 1 } else { -1 });
        let became_visible = match change {
            Some(v) => v,
            None => return, // multiplicity changed but visibility did not
        };
        self.stats.updates += 1;
        self.delta.record(&delta.relation, became_visible);

        let rule_indices: Vec<usize> = self
            .trigger
            .get(&delta.relation)
            .cloned()
            .unwrap_or_default();
        for rule_idx in rule_indices {
            if self.recompute_rules.contains(&rule_idx) {
                dirty.insert(rule_idx);
                continue;
            }
            self.fire_incremental(rule_idx, &delta.relation, &delta.tuple, became_visible);
        }
    }

    /// Fire a non-aggregate rule with the delta tuple pinned at its (unique)
    /// occurrence of `relation`.
    fn fire_incremental(&mut self, rule_idx: usize, relation: &str, tuple: &Tuple, insert: bool) {
        let rule = self.rules[rule_idx].clone();
        let pin_pos = rule.body.iter().position(|b| match b {
            BodyItem::Atom(a) => a.relation == relation,
            _ => false,
        });
        let pin_pos = match pin_pos {
            Some(p) => p,
            None => return,
        };
        let bindings_list = self.join_body(&rule.body, Some((pin_pos, tuple)));
        let mut head_changes: Vec<(Tuple, bool)> = Vec::new();
        for b in bindings_list {
            self.stats.derivations += 1;
            if let Ok(head_tuple) = self.instantiate_simple_head(&rule, &b) {
                head_changes.push((head_tuple, insert));
            }
        }
        for (head_tuple, ins) in head_changes {
            self.emit(&rule, head_tuple, ins);
        }
    }

    /// Recompute an aggregate (or repeated-relation) rule from scratch and
    /// apply the diff against its previous output.
    fn recompute_rule(&mut self, rule_idx: usize) {
        self.stats.aggregate_recomputes += 1;
        let rule = self.rules[rule_idx].clone();
        let bindings_list = self.join_body(&rule.body, None);
        let new_output: Vec<Tuple> = if rule.is_aggregate() {
            self.aggregate_head(&rule, &bindings_list)
        } else {
            let mut out = Vec::new();
            for b in &bindings_list {
                self.stats.derivations += 1;
                if let Ok(t) = self.instantiate_simple_head(&rule, b) {
                    out.push(t);
                }
            }
            out.sort();
            out.dedup();
            out
        };
        let prev = self
            .prev_output
            .insert(rule_idx, new_output.clone())
            .unwrap_or_default();
        let prev_set: HashSet<&Tuple> = prev.iter().collect();
        let new_set: HashSet<&Tuple> = new_output.iter().collect();
        let deletions: Vec<Tuple> = prev
            .iter()
            .filter(|t| !new_set.contains(*t))
            .cloned()
            .collect();
        let insertions: Vec<Tuple> = new_output
            .iter()
            .filter(|t| !prev_set.contains(*t))
            .cloned()
            .collect();
        for t in deletions {
            self.emit(&rule, t, false);
        }
        for t in insertions {
            self.emit(&rule, t, true);
        }
    }

    /// Compute the grouped, aggregated head tuples of a rule.
    fn aggregate_head(&mut self, rule: &Rule, bindings_list: &[Bindings]) -> Vec<Tuple> {
        // group key -> per-aggregate collected values
        let mut groups: HashMap<Vec<Value>, Vec<Vec<Value>>> = HashMap::new();
        let agg_count = rule
            .head
            .args
            .iter()
            .filter(|a| matches!(a, HeadArg::Agg(_, _)))
            .count();
        for b in bindings_list {
            self.stats.derivations += 1;
            let mut key = Vec::new();
            let mut ok = true;
            let mut collected: Vec<Value> = Vec::with_capacity(agg_count);
            for arg in &rule.head.args {
                match arg {
                    HeadArg::Term(Term::Const(c)) => key.push(c.clone()),
                    HeadArg::Term(Term::Var(v)) => match b.get(v) {
                        Some(val) => key.push(val.clone()),
                        None => {
                            ok = false;
                            break;
                        }
                    },
                    HeadArg::Agg(_, over) => match b.get(over) {
                        Some(val) => collected.push(val.clone()),
                        None => {
                            ok = false;
                            break;
                        }
                    },
                }
            }
            if !ok {
                continue;
            }
            let entry = groups
                .entry(key)
                .or_insert_with(|| vec![Vec::new(); agg_count]);
            for (slot, v) in entry.iter_mut().zip(collected) {
                slot.push(v);
            }
        }
        let mut out = Vec::with_capacity(groups.len());
        for (key, values_per_agg) in groups {
            let mut tuple = Vec::with_capacity(rule.head.args.len());
            let mut key_iter = key.into_iter();
            let mut agg_iter = values_per_agg.into_iter();
            for arg in &rule.head.args {
                match arg {
                    HeadArg::Term(_) => tuple.push(key_iter.next().expect("group key arity")),
                    HeadArg::Agg(func, _) => {
                        let vals = agg_iter.next().expect("aggregate arity");
                        tuple.push(func.compute(&vals));
                    }
                }
            }
            out.push(tuple);
        }
        out.sort();
        out
    }

    fn instantiate_simple_head(
        &self,
        rule: &Rule,
        bindings: &Bindings,
    ) -> Result<Tuple, crate::expr::EvalError> {
        let mut out = Vec::with_capacity(rule.head.args.len());
        for arg in &rule.head.args {
            match arg {
                HeadArg::Term(Term::Const(c)) => out.push(c.clone()),
                HeadArg::Term(Term::Var(v)) => match bindings.get(v) {
                    Some(val) => out.push(val.clone()),
                    None => {
                        return Err(crate::expr::EvalError::UnboundVariable(v.clone()));
                    }
                },
                HeadArg::Agg(_, _) => {
                    unreachable!("aggregate heads are handled by recompute_rule")
                }
            }
        }
        Ok(out)
    }

    /// Apply a head-tuple change: local insert/delete, or remote send when
    /// the head is located at another node.
    fn emit(&mut self, rule: &Rule, tuple: Tuple, insert: bool) {
        if rule.head.located {
            if let Some(Value::Addr(dest)) = tuple.first() {
                if *dest != self.node {
                    self.stats.remote_sends += 1;
                    self.outbox.push(RemoteTuple {
                        dest: *dest,
                        relation: rule.head.relation.clone(),
                        tuple,
                        insert,
                    });
                    return;
                }
            }
        }
        self.pending.push_back(Delta {
            relation: rule.head.relation.clone(),
            tuple,
            insert,
        });
    }

    /// Join the body items against the current database. If `pin` is given,
    /// the atom at that body position matches only the pinned tuple.
    fn join_body(&self, body: &[BodyItem], pin: Option<(usize, &Tuple)>) -> Vec<Bindings> {
        let mut frontier = vec![Bindings::new()];
        for (idx, item) in body.iter().enumerate() {
            if frontier.is_empty() {
                return frontier;
            }
            let mut next = Vec::with_capacity(frontier.len());
            match item {
                BodyItem::Atom(atom) => {
                    if let Some((pinned_idx, pinned_tuple)) = pin {
                        if pinned_idx == idx {
                            for b in &frontier {
                                let mut nb = b.clone();
                                if atom.match_tuple(pinned_tuple, &mut nb) {
                                    next.push(nb);
                                }
                            }
                            frontier = next;
                            continue;
                        }
                    }
                    let empty = Relation::new();
                    let rel = self.relations.get(&atom.relation).unwrap_or(&empty);
                    for b in &frontier {
                        for t in rel.iter() {
                            let mut nb = b.clone();
                            if atom.match_tuple(t, &mut nb) {
                                next.push(nb);
                            }
                        }
                    }
                }
                BodyItem::Filter(expr) => {
                    for b in &frontier {
                        if expr.eval_bool(b).unwrap_or(false) {
                            next.push(b.clone());
                        }
                    }
                }
                BodyItem::Assign(var, expr) => {
                    for b in &frontier {
                        if let Ok(v) = expr.eval(b) {
                            let mut nb = b.clone();
                            nb.set(var, v);
                            next.push(nb);
                        }
                    }
                }
            }
            frontier = next;
        }
        frontier
    }

    /// Evaluate an ad-hoc body (query) against the current database and
    /// return the resulting bindings. Used by the Cologne runtime when
    /// grounding solver rules.
    pub fn query(&self, body: &[BodyItem]) -> Vec<Bindings> {
        self.join_body(body, None)
    }
}
