//! Compiled rule plans: the engine's replacement for interpreted matching.
//!
//! [`crate::Engine::add_rule`] compiles each rule once into a [`RulePlan`]:
//! variable names become dense `u16` slots, atom arguments become per-column
//! [`ColAction`]s over interned rows, and expressions become [`PExpr`] trees
//! that read slots directly. Evaluation then never touches strings or
//! `Bindings`: a frontier is a flat `Vec<IVal>` of slot values, and each
//! body atom is resolved either by probing a lazily built bound-column hash
//! index or by scanning the relation's arena.
//!
//! ## Invariants (kept in lock-step with `engine::reference`)
//!
//! * **Binding equivalence** — for every rule and database state, executing
//!   a plan yields exactly the multiset of variable bindings the reference
//!   interpreter's `join_body` produces. Atom reordering is only applied
//!   when provably safe (see [`reorder_safe`]): every filter/assign must
//!   reference only variables bound by *earlier* items in the original
//!   order, and no assignment target may appear in an atom. Otherwise the
//!   plan preserves the original body order, including reference quirks
//!   such as rules deadened by forward references (compiled to
//!   [`PExpr::Unbound`], which fails every evaluation just as the
//!   interpreter does).
//! * **Static boundness** — whether a slot is bound at a given plan
//!   position is a compile-time fact (atoms and assignments bind their
//!   variables for *all* frontier rows), so the executor needs no runtime
//!   bound mask and unbound reads compile to `Unbound`/`HeadCol::Unbound`.
//! * **Error parity** — [`PExpr::eval`] mirrors `Expr::eval` exactly:
//!   symbolic values, unbound variables, type mismatches and division by
//!   zero all fail, a failed filter drops the row, and a failed assignment
//!   drops the row (matching the interpreter's `if let Ok` pattern).
//! * **Pinned firing** — `pinned[rel]` is the plan used by pipelined
//!   semi-naive delta firing: the atom occurrence of `rel` matches only the
//!   delta row. Non-recompute rules mention each body relation at most once
//!   (repeats force recompute-and-diff), so the pin position is unique.

use crate::expr::{Expr, Op, Term};
use crate::intern::Interner;
use crate::rule::{AggFunc, Atom, BodyItem, HeadArg, Rule};
use crate::tuple::{hash_key, IRow, IVal, RelStore};
use std::collections::HashMap;

/// Source of one probe-key component.
#[derive(Debug, Clone)]
pub(crate) enum KeySrc {
    /// Take the value from a frontier slot.
    Slot(u16),
    /// A constant from the rule text.
    Const(IVal),
}

/// A bound-column probe: `cols` (ascending) identify the index, `srcs`
/// produce the key values in the same column order.
#[derive(Debug, Clone)]
pub(crate) struct ProbeKey {
    pub cols: Vec<u8>,
    pub srcs: Vec<KeySrc>,
}

/// What to do with one column of a candidate row.
#[derive(Debug, Clone)]
pub(crate) enum ColAction {
    /// Column must equal this constant.
    CheckConst(IVal),
    /// Column must equal the current slot value.
    CheckSlot(u16),
    /// Bind the slot to the column value.
    Bind(u16),
}

/// One step of a compiled body.
#[derive(Debug, Clone)]
pub(crate) enum PlanOp {
    /// Join against a stored relation, by index probe or arena scan.
    Match {
        rel: u32,
        arity: u8,
        probe: Option<ProbeKey>,
        actions: Vec<ColAction>,
    },
    /// Join against the pinned delta row only.
    Pinned { arity: u8, actions: Vec<ColAction> },
    /// Keep rows where the expression evaluates to true.
    Filter(PExpr),
    /// `slot := expr`; rows where evaluation fails are dropped.
    Assign { slot: u16, expr: PExpr },
}

/// A compiled expression reading frontier slots.
#[derive(Debug, Clone)]
pub(crate) enum PExpr {
    Const(IVal),
    /// A variable not bound at this plan position — always fails.
    Unbound,
    Slot(u16),
    Bin(Op, Box<PExpr>, Box<PExpr>),
    Abs(Box<PExpr>),
    Neg(Box<PExpr>),
    Not(Box<PExpr>),
}

impl PExpr {
    /// Evaluate against a frontier row. `Err(())` corresponds exactly to the
    /// reference interpreter's `EvalError` cases.
    pub fn eval(&self, slots: &[IVal]) -> Result<IVal, ()> {
        match self {
            PExpr::Const(v) => {
                if matches!(v, IVal::Sym(_)) {
                    Err(())
                } else {
                    Ok(*v)
                }
            }
            PExpr::Unbound => Err(()),
            PExpr::Slot(s) => {
                let v = slots[*s as usize];
                if matches!(v, IVal::Sym(_)) {
                    Err(())
                } else {
                    Ok(v)
                }
            }
            PExpr::Neg(e) => match e.eval(slots)? {
                IVal::Int(i) => Ok(IVal::Int(-i)),
                IVal::Float(bits) => Ok(fval(-f64::from_bits(bits))),
                _ => Err(()),
            },
            PExpr::Abs(e) => match e.eval(slots)? {
                IVal::Int(i) => Ok(IVal::Int(i.abs())),
                IVal::Float(bits) => Ok(fval(f64::from_bits(bits).abs())),
                _ => Err(()),
            },
            PExpr::Not(e) => {
                let v = e.eval(slots)?;
                v.as_bool().map(|b| IVal::Bool(!b)).ok_or(())
            }
            PExpr::Bin(op, a, b) => {
                let va = a.eval(slots)?;
                let vb = b.eval(slots)?;
                eval_binop(*op, va, vb)
            }
        }
    }
}

/// Canonicalised float value (mirrors `Value::float` + `F64` hashing).
fn fval(x: f64) -> IVal {
    IVal::Float(crate::value::F64(x).canonical_bits())
}

/// Mirror of `expr::eval_binop` over interned values.
fn eval_binop(op: Op, a: IVal, b: IVal) -> Result<IVal, ()> {
    use Op::*;
    match op {
        And | Or => match (a.as_bool(), b.as_bool()) {
            (Some(x), Some(y)) => Ok(IVal::Bool(if op == And { x && y } else { x || y })),
            _ => Err(()),
        },
        Eq | Ne => {
            let equal = match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x == y,
                _ => a == b,
            };
            Ok(IVal::Bool(if op == Eq { equal } else { !equal }))
        }
        Lt | Le | Gt | Ge => match (a.as_f64(), b.as_f64()) {
            (Some(x), Some(y)) => Ok(IVal::Bool(match op {
                Lt => x < y,
                Le => x <= y,
                Gt => x > y,
                _ => x >= y,
            })),
            _ => Err(()),
        },
        Add | Sub | Mul | Div => match (a, b) {
            (IVal::Int(x), IVal::Int(y)) => Ok(IVal::Int(match op {
                Add => x + y,
                Sub => x - y,
                Mul => x * y,
                _ => {
                    if y == 0 {
                        return Err(());
                    }
                    x / y
                }
            })),
            _ => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => Ok(fval(match op {
                    Add => x + y,
                    Sub => x - y,
                    Mul => x * y,
                    _ => {
                        if y == 0.0 {
                            return Err(());
                        }
                        x / y
                    }
                })),
                _ => Err(()),
            },
        },
    }
}

/// One column of a compiled head.
#[derive(Debug, Clone)]
pub(crate) enum HeadCol {
    Const(IVal),
    Slot(u16),
    /// Head variable never bound by the body — instantiation fails.
    Unbound,
    /// Aggregate over a bound slot.
    Agg(AggFunc, u16),
    /// Aggregate over a never-bound variable — the row is skipped.
    AggUnbound,
}

/// The compiled head of a rule.
#[derive(Debug, Clone)]
pub(crate) struct HeadPlan {
    pub rel: u32,
    pub located: bool,
    pub cols: Vec<HeadCol>,
}

/// A fully compiled rule.
#[derive(Debug)]
pub(crate) struct RulePlan {
    /// Frontier stride (≥ 1 so `chunks` is always valid).
    pub n_slots: usize,
    pub head: HeadPlan,
    /// Full-evaluation plan (recompute-and-diff, `query`-style joins).
    pub full: Vec<PlanOp>,
    /// Per-relation delta plans: `(rel, ops)` with the occurrence of `rel`
    /// compiled to [`PlanOp::Pinned`].
    pub pinned: Vec<(u32, Vec<PlanOp>)>,
    /// Head carries aggregates.
    pub aggregate: bool,
    /// Maintained by recompute-and-diff (aggregates or repeated relations).
    pub recompute: bool,
}

/// Variable-name → slot map, first occurrence across atoms and assignment
/// targets in original body order.
fn slot_map(rule: &Rule) -> HashMap<String, u16> {
    let mut map = HashMap::new();
    let add = |name: &str, map: &mut HashMap<String, u16>| {
        if !map.contains_key(name) {
            map.insert(name.to_string(), map.len() as u16);
        }
    };
    for item in &rule.body {
        match item {
            BodyItem::Atom(a) => {
                for t in &a.args {
                    if let Term::Var(v) = t {
                        add(v, &mut map);
                    }
                }
            }
            BodyItem::Assign(v, _) => add(v, &mut map),
            BodyItem::Filter(_) => {}
        }
    }
    map
}

/// True when atom reordering provably preserves reference semantics: every
/// filter/assign reads only variables bound by earlier items (no forward
/// references, which deaden the rule in the reference interpreter), and no
/// assignment target appears in any atom (an atom could otherwise observe
/// the variable before or after the overwrite depending on order).
fn reorder_safe(rule: &Rule) -> bool {
    let mut atom_vars: Vec<String> = Vec::new();
    for item in &rule.body {
        if let BodyItem::Atom(a) = item {
            atom_vars.extend(a.variables());
        }
    }
    let mut bound: Vec<String> = Vec::new();
    for item in &rule.body {
        match item {
            BodyItem::Atom(a) => {
                for v in a.variables() {
                    if !bound.contains(&v) {
                        bound.push(v);
                    }
                }
            }
            BodyItem::Filter(e) => {
                if e.variables().iter().any(|v| !bound.contains(v)) {
                    return false;
                }
            }
            BodyItem::Assign(target, e) => {
                if e.variables().iter().any(|v| !bound.contains(v)) {
                    return false;
                }
                if atom_vars.contains(target) {
                    return false;
                }
                if !bound.contains(target) {
                    bound.push(target.clone());
                }
            }
        }
    }
    true
}

struct Compiler<'a> {
    slots: &'a HashMap<String, u16>,
    interner: &'a mut Interner,
}

impl Compiler<'_> {
    fn compile_expr(&mut self, expr: &Expr, bound: &[bool]) -> PExpr {
        match expr {
            Expr::Term(Term::Const(v)) => PExpr::Const(IVal::intern(v, &mut self.interner.strs)),
            Expr::Term(Term::Var(name)) => match self.slots.get(name) {
                Some(&s) if bound[s as usize] => PExpr::Slot(s),
                _ => PExpr::Unbound,
            },
            Expr::BinOp(op, a, b) => PExpr::Bin(
                *op,
                Box::new(self.compile_expr(a, bound)),
                Box::new(self.compile_expr(b, bound)),
            ),
            Expr::Abs(e) => PExpr::Abs(Box::new(self.compile_expr(e, bound))),
            Expr::Neg(e) => PExpr::Neg(Box::new(self.compile_expr(e, bound))),
            Expr::Not(e) => PExpr::Not(Box::new(self.compile_expr(e, bound))),
        }
    }

    /// Column actions (and probe-key parts) for one atom at the current
    /// bound state; marks the atom's fresh variables bound.
    fn compile_atom(
        &mut self,
        atom: &Atom,
        bound: &mut [bool],
    ) -> (Vec<ColAction>, Vec<(u8, KeySrc)>) {
        let bound_before = bound.to_vec();
        let mut actions = Vec::with_capacity(atom.args.len());
        let mut key = Vec::new();
        for (c, term) in atom.args.iter().enumerate() {
            match term {
                Term::Const(v) => {
                    let iv = IVal::intern(v, &mut self.interner.strs);
                    actions.push(ColAction::CheckConst(iv));
                    key.push((c as u8, KeySrc::Const(iv)));
                }
                Term::Var(name) => {
                    let s = self.slots[name];
                    if bound_before[s as usize] {
                        actions.push(ColAction::CheckSlot(s));
                        key.push((c as u8, KeySrc::Slot(s)));
                    } else if bound[s as usize] {
                        // repeated within this atom: value known only
                        // mid-row, so it checks but cannot key a probe
                        actions.push(ColAction::CheckSlot(s));
                    } else {
                        actions.push(ColAction::Bind(s));
                        bound[s as usize] = true;
                    }
                }
            }
        }
        (actions, key)
    }

    fn match_op(&mut self, atom: &Atom, rel: u32, bound: &mut [bool]) -> PlanOp {
        let (actions, key) = self.compile_atom(atom, bound);
        let probe = if key.is_empty() {
            None
        } else {
            PlanOp::probe_from(key)
        };
        PlanOp::Match {
            rel,
            arity: atom.args.len() as u8,
            probe,
            actions,
        }
    }

    /// Number of already-determined columns — the greedy join-order score.
    fn bound_cols(&self, atom: &Atom, bound: &[bool]) -> usize {
        atom.args
            .iter()
            .filter(|t| match t {
                Term::Const(_) => true,
                Term::Var(v) => bound[self.slots[v] as usize],
            })
            .count()
    }

    /// Compile the body with an optional pinned atom position. When
    /// `reorder` is false the original item order is preserved verbatim.
    fn schedule(
        &mut self,
        rule: &Rule,
        pin: Option<usize>,
        reorder: bool,
        n_slots: usize,
    ) -> Vec<PlanOp> {
        let mut bound = vec![false; n_slots];
        let mut ops = Vec::with_capacity(rule.body.len());
        if !reorder {
            for (idx, item) in rule.body.iter().enumerate() {
                match item {
                    BodyItem::Atom(atom) => {
                        if pin == Some(idx) {
                            let (actions, _) = self.compile_atom(atom, &mut bound);
                            ops.push(PlanOp::Pinned {
                                arity: atom.args.len() as u8,
                                actions,
                            });
                        } else {
                            let rel = self.interner.rels.intern(&atom.relation);
                            ops.push(self.match_op(atom, rel, &mut bound));
                        }
                    }
                    BodyItem::Filter(e) => {
                        let pe = self.compile_expr(e, &bound);
                        ops.push(PlanOp::Filter(pe));
                    }
                    BodyItem::Assign(v, e) => {
                        let pe = self.compile_expr(e, &bound);
                        let s = self.slots[v];
                        bound[s as usize] = true;
                        ops.push(PlanOp::Assign { slot: s, expr: pe });
                    }
                }
            }
            return ops;
        }

        // Reorderable body: pinned atom first, then repeatedly flush the
        // ready prefix of filters/assigns (their original relative order is
        // preserved) and pick the remaining atom with the most bound
        // columns (ties by original position).
        let mut atoms: Vec<(usize, &Atom)> = Vec::new();
        let mut others: Vec<(usize, &BodyItem)> = Vec::new();
        for (idx, item) in rule.body.iter().enumerate() {
            match item {
                BodyItem::Atom(a) if pin != Some(idx) => atoms.push((idx, a)),
                BodyItem::Atom(_) => {}
                other => others.push((idx, other)),
            }
        }
        if let Some(p) = pin {
            if let BodyItem::Atom(atom) = &rule.body[p] {
                let (actions, _) = self.compile_atom(atom, &mut bound);
                ops.push(PlanOp::Pinned {
                    arity: atom.args.len() as u8,
                    actions,
                });
            }
        }
        let mut next_other = 0usize;
        loop {
            // Flush every filter/assign whose variables are all bound.
            while next_other < others.len() {
                let (_, item) = others[next_other];
                let ready = match item {
                    BodyItem::Filter(e) | BodyItem::Assign(_, e) => e
                        .variables()
                        .iter()
                        .all(|v| self.slots.get(v).is_some_and(|&s| bound[s as usize])),
                    BodyItem::Atom(_) => unreachable!(),
                };
                if !ready {
                    break;
                }
                match item {
                    BodyItem::Filter(e) => {
                        let pe = self.compile_expr(e, &bound);
                        ops.push(PlanOp::Filter(pe));
                    }
                    BodyItem::Assign(v, e) => {
                        let pe = self.compile_expr(e, &bound);
                        let s = self.slots[v];
                        bound[s as usize] = true;
                        ops.push(PlanOp::Assign { slot: s, expr: pe });
                    }
                    BodyItem::Atom(_) => unreachable!(),
                }
                next_other += 1;
            }
            if atoms.is_empty() {
                break;
            }
            let best = atoms
                .iter()
                .enumerate()
                .max_by_key(|(_, (pos, a))| (self.bound_cols(a, &bound), usize::MAX - pos))
                .map(|(i, _)| i)
                .unwrap();
            let (_, atom) = atoms.remove(best);
            let rel = self.interner.rels.intern(&atom.relation);
            ops.push(self.match_op(atom, rel, &mut bound));
        }
        debug_assert_eq!(next_other, others.len(), "unschedulable filter/assign");
        ops
    }
}

impl PlanOp {
    /// Build a probe key from `(col, src)` parts (already in column order).
    fn probe_from(key: Vec<(u8, KeySrc)>) -> Option<ProbeKey> {
        let cols = key.iter().map(|(c, _)| *c).collect();
        let srcs = key.into_iter().map(|(_, s)| s).collect();
        Some(ProbeKey { cols, srcs })
    }
}

/// Compile a rule. `recompute` mirrors the engine's recompute-and-diff
/// classification (aggregate head or repeated body relation).
pub(crate) fn compile(rule: &Rule, recompute: bool, interner: &mut Interner) -> RulePlan {
    let slots = slot_map(rule);
    let n_slots = slots.len().max(1);
    let reorder = reorder_safe(rule);
    let head_rel = interner.rels.intern(&rule.head.relation);

    // Head columns read the final bound state.
    let mut final_bound = vec![false; n_slots];
    for item in &rule.body {
        match item {
            BodyItem::Atom(a) => {
                for v in a.variables() {
                    final_bound[slots[&v] as usize] = true;
                }
            }
            BodyItem::Assign(v, _) => final_bound[slots[v] as usize] = true,
            BodyItem::Filter(_) => {}
        }
    }
    let mut cols = Vec::with_capacity(rule.head.args.len());
    for arg in &rule.head.args {
        cols.push(match arg {
            HeadArg::Term(Term::Const(c)) => HeadCol::Const(IVal::intern(c, &mut interner.strs)),
            HeadArg::Term(Term::Var(v)) => match slots.get(v) {
                Some(&s) if final_bound[s as usize] => HeadCol::Slot(s),
                _ => HeadCol::Unbound,
            },
            HeadArg::Agg(f, v) => match slots.get(v) {
                Some(&s) if final_bound[s as usize] => HeadCol::Agg(*f, s),
                _ => HeadCol::AggUnbound,
            },
        });
    }
    let head = HeadPlan {
        rel: head_rel,
        located: rule.head.located,
        cols,
    };

    let mut c = Compiler {
        slots: &slots,
        interner,
    };
    let full = c.schedule(rule, None, reorder, n_slots);
    let mut pinned = Vec::new();
    if !recompute {
        // Pipelined firing pins the delta at the first (unique) occurrence
        // of each body relation, exactly like the reference interpreter.
        let mut seen: Vec<&str> = Vec::new();
        for (idx, item) in rule.body.iter().enumerate() {
            if let BodyItem::Atom(a) = item {
                if seen.contains(&a.relation.as_str()) {
                    continue;
                }
                seen.push(&a.relation);
                let ops = c.schedule(rule, Some(idx), reorder, n_slots);
                let rel = c.interner.rels.intern(&a.relation);
                pinned.push((rel, ops));
            }
        }
    }

    RulePlan {
        n_slots,
        head,
        full,
        pinned,
        aggregate: rule.is_aggregate(),
        recompute,
    }
}

/// Execute a plan: seeds a single all-dummy frontier row, applies every op,
/// and appends the surviving frontier rows (stride `n_slots`) to `out`.
///
/// `stores` is mutable only to let [`RelStore::ensure_index`] build missing
/// bound-column indexes before the read-only join pass; the firing itself
/// never changes relation contents (emissions go through the engine queue).
pub(crate) fn execute(
    ops: &[PlanOp],
    n_slots: usize,
    pinned_row: Option<&IRow>,
    stores: &mut [RelStore],
    out: &mut Vec<IVal>,
) {
    // Prepare pass: resolve (or build) the index behind every probe.
    let index_ids: Vec<usize> = ops
        .iter()
        .map(|op| match op {
            PlanOp::Match {
                rel,
                arity,
                probe: Some(pk),
                ..
            } => stores
                .get_mut(*rel as usize)
                .map(|s| s.ensure_index(*arity, &pk.cols))
                .unwrap_or(0),
            _ => 0,
        })
        .collect();

    let mut cur: Vec<IVal> = vec![IVal::Int(0); n_slots];
    let mut next: Vec<IVal> = Vec::new();
    let mut scratch: Vec<IVal> = vec![IVal::Int(0); n_slots];

    for (op_idx, op) in ops.iter().enumerate() {
        if cur.is_empty() {
            break;
        }
        next.clear();
        match op {
            PlanOp::Pinned { arity, actions } => {
                if let Some(row) = pinned_row {
                    let vals = row.as_slice();
                    if vals.len() == *arity as usize {
                        for chunk in cur.chunks(n_slots) {
                            if apply_actions(chunk, vals, actions, &mut scratch) {
                                next.extend_from_slice(&scratch);
                            }
                        }
                    }
                }
            }
            PlanOp::Match {
                rel,
                arity,
                probe,
                actions,
            } => {
                let store = match stores.get(*rel as usize) {
                    Some(s) => s,
                    None => {
                        cur.clear();
                        break;
                    }
                };
                match probe {
                    Some(pk) => {
                        let ix = index_ids[op_idx];
                        for chunk in cur.chunks(n_slots) {
                            let key = hash_key(pk.srcs.iter().map(|s| match s {
                                KeySrc::Slot(slot) => chunk[*slot as usize],
                                KeySrc::Const(v) => *v,
                            }));
                            for &row_idx in store.probe(ix, key) {
                                let vals = store.row(row_idx).as_slice();
                                if apply_actions(chunk, vals, actions, &mut scratch) {
                                    next.extend_from_slice(&scratch);
                                }
                            }
                        }
                    }
                    None => {
                        for chunk in cur.chunks(n_slots) {
                            for row_idx in 0..store.num_rows() as u32 {
                                if !store.visible_at(row_idx) {
                                    continue;
                                }
                                let vals = store.row(row_idx).as_slice();
                                if vals.len() != *arity as usize {
                                    continue;
                                }
                                if apply_actions(chunk, vals, actions, &mut scratch) {
                                    next.extend_from_slice(&scratch);
                                }
                            }
                        }
                    }
                }
            }
            PlanOp::Filter(expr) => {
                for chunk in cur.chunks(n_slots) {
                    if expr.eval(chunk).ok().and_then(IVal::as_bool) == Some(true) {
                        next.extend_from_slice(chunk);
                    }
                }
            }
            PlanOp::Assign { slot, expr } => {
                for chunk in cur.chunks(n_slots) {
                    if let Ok(v) = expr.eval(chunk) {
                        scratch.copy_from_slice(chunk);
                        scratch[*slot as usize] = v;
                        next.extend_from_slice(&scratch);
                    }
                }
            }
        }
        std::mem::swap(&mut cur, &mut next);
    }
    out.extend_from_slice(&cur);
}

/// Apply one atom's column actions to a candidate row. On success `scratch`
/// holds the extended frontier row.
#[inline]
fn apply_actions(
    chunk: &[IVal],
    row: &[IVal],
    actions: &[ColAction],
    scratch: &mut [IVal],
) -> bool {
    scratch.copy_from_slice(chunk);
    for (col, action) in actions.iter().enumerate() {
        let v = row[col];
        match action {
            ColAction::CheckConst(c) => {
                if v != *c {
                    return false;
                }
            }
            ColAction::CheckSlot(s) => {
                if scratch[*s as usize] != v {
                    return false;
                }
            }
            ColAction::Bind(s) => scratch[*s as usize] = v,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::Expr;
    use crate::rule::Head;

    fn tc_rule() -> Rule {
        Rule::new(
            "r2",
            Head::simple("path", vec![Term::var("X"), Term::var("Z")]),
            vec![
                BodyItem::Atom(Atom::new("link", vec![Term::var("X"), Term::var("Y")])),
                BodyItem::Atom(Atom::new("path", vec![Term::var("Y"), Term::var("Z")])),
            ],
        )
    }

    #[test]
    fn transitive_closure_compiles_with_probes() {
        let mut interner = Interner::default();
        let plan = compile(&tc_rule(), false, &mut interner);
        assert_eq!(plan.n_slots, 3);
        assert!(!plan.recompute);
        assert_eq!(plan.pinned.len(), 2);
        // Full plan: first atom scans (nothing bound), second probes on the
        // join column.
        match &plan.full[1] {
            PlanOp::Match {
                probe: Some(pk), ..
            } => assert_eq!(pk.cols, vec![0]),
            other => panic!("expected probing match, got {other:?}"),
        }
        // Pinned plans probe the other atom through the shared variable.
        for (_, ops) in &plan.pinned {
            assert!(matches!(ops[0], PlanOp::Pinned { .. }));
            match &ops[1] {
                PlanOp::Match {
                    probe: Some(pk), ..
                } => assert_eq!(pk.cols.len(), 1),
                other => panic!("expected probing match, got {other:?}"),
            }
        }
    }

    #[test]
    fn forward_reference_disables_reordering() {
        // Filter references Y before any atom binds it.
        let rule = Rule::new(
            "bad",
            Head::simple("out", vec![Term::var("X")]),
            vec![
                BodyItem::Filter(Expr::bin(Op::Gt, Expr::var("Y"), Expr::int(0))),
                BodyItem::Atom(Atom::new("a", vec![Term::var("X"), Term::var("Y")])),
            ],
        );
        assert!(!reorder_safe(&rule));
        let mut interner = Interner::default();
        let plan = compile(&rule, false, &mut interner);
        // Original order preserved: the filter compiles to an always-failing
        // expression, deadening the rule exactly like the interpreter.
        match &plan.full[0] {
            PlanOp::Filter(PExpr::Bin(_, l, _)) => assert!(matches!(**l, PExpr::Unbound)),
            other => panic!("expected filter first, got {other:?}"),
        }
    }

    #[test]
    fn assign_target_in_atom_disables_reordering() {
        let rule = Rule::new(
            "r",
            Head::simple("out", vec![Term::var("X")]),
            vec![
                BodyItem::Atom(Atom::new("a", vec![Term::var("X")])),
                BodyItem::Assign("X".into(), Expr::int(1)),
            ],
        );
        assert!(!reorder_safe(&rule));
    }

    #[test]
    fn pexpr_matches_interpreter_semantics() {
        let slots = [IVal::Int(6), fval(1.5), IVal::Sym(0)];
        let mul = PExpr::Bin(
            Op::Mul,
            Box::new(PExpr::Slot(0)),
            Box::new(PExpr::Const(IVal::Int(2))),
        );
        assert_eq!(mul.eval(&slots), Ok(IVal::Int(12)));
        let mixed = PExpr::Bin(Op::Add, Box::new(PExpr::Slot(0)), Box::new(PExpr::Slot(1)));
        assert_eq!(mixed.eval(&slots), Ok(fval(7.5)));
        let div0 = PExpr::Bin(
            Op::Div,
            Box::new(PExpr::Slot(0)),
            Box::new(PExpr::Const(IVal::Int(0))),
        );
        assert_eq!(div0.eval(&slots), Err(()));
        assert_eq!(PExpr::Slot(2).eval(&slots), Err(())); // symbolic
        assert_eq!(PExpr::Unbound.eval(&slots), Err(()));
        // structural equality on non-numeric values
        let eq = PExpr::Bin(
            Op::Eq,
            Box::new(PExpr::Const(IVal::Str(3))),
            Box::new(PExpr::Const(IVal::Str(3))),
        );
        assert_eq!(eq.eval(&slots), Ok(IVal::Bool(true)));
    }
}
