//! Engine-local symbol interning.
//!
//! Each [`crate::Engine`] owns one [`Interner`] with two id spaces: relation
//! names ([`RelId`]) and string attribute values ([`StrId`]). Interning is a
//! boundary operation — everything inside the evaluation core works on the
//! `u32` ids, and names are resolved back to strings only when tuples leave
//! the engine (public reads, the remote outbox, diagnostics).
//!
//! Ids are assigned densely in first-seen order, which makes them usable as
//! direct indexes into the engine's relation-store and trigger vectors. They
//! are deliberately *not* stable across engines: a tuple shipped to another
//! node carries real strings (see [`crate::RemoteTuple`]) and is re-interned
//! on receipt, so distributed runs agree on content, not on ids.

use std::collections::HashMap;
use std::sync::Arc;

/// One id space: a dense `u32 -> str` table with its reverse map.
///
/// Strings are stored as `Arc<str>` so the table and the reverse map share
/// one allocation per symbol.
#[derive(Debug, Clone, Default)]
pub(crate) struct SymbolTable {
    names: Vec<Arc<str>>,
    ids: HashMap<Arc<str>, u32>,
}

impl SymbolTable {
    /// Id of `name`, allocating the next dense id if unseen.
    pub fn intern(&mut self, name: &str) -> u32 {
        if let Some(&id) = self.ids.get(name) {
            return id;
        }
        let id = self.names.len() as u32;
        let shared: Arc<str> = Arc::from(name);
        self.names.push(Arc::clone(&shared));
        self.ids.insert(shared, id);
        id
    }

    /// Id of `name` if already interned (read-only lookup).
    pub fn lookup(&self, name: &str) -> Option<u32> {
        self.ids.get(name).copied()
    }

    /// The string behind an id. Panics on an id this table never issued.
    pub fn resolve(&self, id: u32) -> &str {
        &self.names[id as usize]
    }

    /// Number of interned symbols (also the next id to be issued).
    pub fn len(&self) -> usize {
        self.names.len()
    }
}

/// The engine's two id spaces: relation names and string values.
#[derive(Debug, Clone, Default)]
pub(crate) struct Interner {
    /// Relation names ([`crate::value::RelId`] space).
    pub rels: SymbolTable,
    /// `Value::Str` payloads ([`crate::value::StrId`] space).
    pub strs: SymbolTable,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn interning_is_dense_and_idempotent() {
        let mut t = SymbolTable::default();
        assert_eq!(t.intern("link"), 0);
        assert_eq!(t.intern("path"), 1);
        assert_eq!(t.intern("link"), 0);
        assert_eq!(t.len(), 2);
        assert_eq!(t.resolve(1), "path");
        assert_eq!(t.lookup("path"), Some(1));
        assert_eq!(t.lookup("missing"), None);
    }

    #[test]
    fn id_spaces_are_independent() {
        let mut i = Interner::default();
        assert_eq!(i.rels.intern("assign"), 0);
        assert_eq!(i.strs.intern("assign"), 0);
        assert_eq!(i.strs.intern("vm1"), 1);
        assert_eq!(i.rels.len(), 1);
        assert_eq!(i.strs.len(), 2);
    }
}
