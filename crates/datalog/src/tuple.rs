//! Tuples and materialized relations.
//!
//! Relations use *counting* multiplicity (a tuple is visible while its
//! derivation count is positive). This is the standard mechanism behind
//! incremental view maintenance in declarative networking engines such as
//! RapidNet (Sec. 5.1 of the paper): when body predicates change, head
//! tuples are inserted or deleted by adjusting counts rather than
//! recomputing rules from scratch.

use std::collections::HashMap;

use crate::value::Value;

/// A tuple: an ordered list of attribute values belonging to some relation.
pub type Tuple = Vec<Value>;

/// A named, materialized relation with counted multiplicities.
#[derive(Debug, Clone, Default)]
pub struct Relation {
    tuples: HashMap<Tuple, i64>,
}

impl Relation {
    /// Empty relation.
    pub fn new() -> Self {
        Relation {
            tuples: HashMap::new(),
        }
    }

    /// Number of distinct visible tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if no tuple is visible.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// True if `t` is currently visible (count > 0).
    pub fn contains(&self, t: &Tuple) -> bool {
        self.tuples.get(t).is_some_and(|&c| c > 0)
    }

    /// Current derivation count for `t` (0 if absent).
    pub fn count(&self, t: &Tuple) -> i64 {
        self.tuples.get(t).copied().unwrap_or(0)
    }

    /// Iterate over visible tuples.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter().filter(|&(_, &c)| c > 0).map(|(t, _)| t)
    }

    /// Collect visible tuples into a vector (deterministically sorted, which
    /// keeps distributed runs reproducible).
    pub fn sorted_tuples(&self) -> Vec<Tuple> {
        let mut out: Vec<Tuple> = self.iter().cloned().collect();
        out.sort();
        out
    }

    /// Adjust the count of `t` by `delta`.
    ///
    /// Returns `Some(true)` if the tuple became visible, `Some(false)` if it
    /// became invisible, and `None` if visibility did not change.
    pub fn adjust(&mut self, t: Tuple, delta: i64) -> Option<bool> {
        if delta == 0 {
            return None;
        }
        let entry = self.tuples.entry(t).or_insert(0);
        let before = *entry > 0;
        *entry += delta;
        let after = *entry > 0;
        let key_dead = *entry == 0;
        if key_dead {
            // Clean up zero-count entries to keep iteration cheap.
            // (We need the key to remove it; re-borrow via retain-free path.)
        }
        match (before, after) {
            (false, true) => Some(true),
            (true, false) => Some(false),
            _ => None,
        }
    }

    /// Remove entries whose count dropped to zero (housekeeping).
    pub fn compact(&mut self) {
        self.tuples.retain(|_, &mut c| c != 0);
    }

    /// Replace the contents with exactly the given tuples, each at count 1.
    /// Returns the (insertions, deletions) diff against the previous state.
    pub fn replace_with(&mut self, new_tuples: Vec<Tuple>) -> (Vec<Tuple>, Vec<Tuple>) {
        let mut target: HashMap<Tuple, i64> = HashMap::with_capacity(new_tuples.len());
        for t in new_tuples {
            *target.entry(t).or_insert(0) = 1;
        }
        let mut inserted = Vec::new();
        let mut deleted = Vec::new();
        for (t, &c) in &self.tuples {
            if c > 0 && !target.contains_key(t) {
                deleted.push(t.clone());
            }
        }
        for t in target.keys() {
            if !self.contains(t) {
                inserted.push(t.clone());
            }
        }
        self.tuples = target;
        (inserted, deleted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[i64]) -> Tuple {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn adjust_tracks_visibility_transitions() {
        let mut r = Relation::new();
        assert_eq!(r.adjust(t(&[1, 2]), 1), Some(true));
        assert_eq!(r.adjust(t(&[1, 2]), 1), None); // still visible
        assert_eq!(r.adjust(t(&[1, 2]), -1), None);
        assert_eq!(r.adjust(t(&[1, 2]), -1), Some(false));
        assert!(!r.contains(&t(&[1, 2])));
        assert_eq!(r.adjust(t(&[1, 2]), 0), None);
    }

    #[test]
    fn len_and_iter_skip_invisible() {
        let mut r = Relation::new();
        r.adjust(t(&[1]), 1);
        r.adjust(t(&[2]), 1);
        r.adjust(t(&[2]), -1);
        r.compact();
        assert_eq!(r.len(), 1);
        assert_eq!(r.iter().count(), 1);
        assert!(r.contains(&t(&[1])));
    }

    #[test]
    fn sorted_tuples_is_deterministic() {
        let mut r = Relation::new();
        r.adjust(t(&[3, 1]), 1);
        r.adjust(t(&[1, 2]), 1);
        r.adjust(t(&[2, 0]), 1);
        assert_eq!(r.sorted_tuples(), vec![t(&[1, 2]), t(&[2, 0]), t(&[3, 1])]);
    }

    #[test]
    fn replace_with_computes_diff() {
        let mut r = Relation::new();
        r.adjust(t(&[1]), 1);
        r.adjust(t(&[2]), 1);
        let (ins, del) = r.replace_with(vec![t(&[2]), t(&[3])]);
        assert_eq!(ins, vec![t(&[3])]);
        assert_eq!(del, vec![t(&[1])]);
        assert!(r.contains(&t(&[2])));
        assert!(r.contains(&t(&[3])));
        assert!(!r.contains(&t(&[1])));
    }

    #[test]
    fn replace_with_empty_clears() {
        let mut r = Relation::new();
        r.adjust(t(&[1]), 1);
        let (ins, del) = r.replace_with(vec![]);
        assert!(ins.is_empty());
        assert_eq!(del, vec![t(&[1])]);
        assert!(r.is_empty());
    }

    #[test]
    fn negative_counts_keep_tuple_invisible() {
        let mut r = Relation::new();
        assert_eq!(r.adjust(t(&[5]), -1), None);
        assert!(!r.contains(&t(&[5])));
        assert_eq!(r.adjust(t(&[5]), 1), None); // back to zero, still invisible
        assert_eq!(r.adjust(t(&[5]), 1), Some(true));
    }
}
