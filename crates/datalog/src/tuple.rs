//! Tuples and materialized relations.
//!
//! Relations use *counting* multiplicity (a tuple is visible while its
//! derivation count is positive). This is the standard mechanism behind
//! incremental view maintenance in declarative networking engines such as
//! RapidNet (Sec. 5.1 of the paper): when body predicates change, head
//! tuples are inserted or deleted by adjusting counts rather than
//! recomputing rules from scratch.
//!
//! Two representations live here:
//!
//! * [`Relation`] — the public `HashMap<Tuple, count>` form, still used by
//!   the test-only reference interpreter ([`crate::engine::reference`]);
//! * `RelStore` (crate-internal) — the indexed arena the production engine
//!   evaluates against: rows are flat arrays of copyable `IVal` words,
//!   distinct rows live once in an arena keyed by hash, the visible-row
//!   count is maintained incrementally (O(1) `relation_len`), and secondary
//!   hash indexes over bound-column sets are built lazily on first probe and
//!   maintained on every visibility transition.

use std::cell::OnceCell;
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hash, Hasher};

use crate::intern::SymbolTable;
use crate::value::{NodeId, SymId, Value, F64};

/// A tuple: an ordered list of attribute values belonging to some relation.
pub type Tuple = Vec<Value>;

/// A named, materialized relation with counted multiplicities.
#[derive(Debug, Clone, Default)]
pub struct Relation {
    tuples: HashMap<Tuple, i64>,
}

impl Relation {
    /// Empty relation.
    pub fn new() -> Self {
        Relation {
            tuples: HashMap::new(),
        }
    }

    /// Number of distinct visible tuples.
    pub fn len(&self) -> usize {
        self.tuples.len()
    }

    /// True if no tuple is visible.
    pub fn is_empty(&self) -> bool {
        self.tuples.is_empty()
    }

    /// True if `t` is currently visible (count > 0).
    pub fn contains(&self, t: &Tuple) -> bool {
        self.tuples.get(t).is_some_and(|&c| c > 0)
    }

    /// Current derivation count for `t` (0 if absent).
    pub fn count(&self, t: &Tuple) -> i64 {
        self.tuples.get(t).copied().unwrap_or(0)
    }

    /// Iterate over visible tuples.
    pub fn iter(&self) -> impl Iterator<Item = &Tuple> {
        self.tuples.iter().filter(|&(_, &c)| c > 0).map(|(t, _)| t)
    }

    /// Collect visible tuples into a vector (deterministically sorted, which
    /// keeps distributed runs reproducible).
    pub fn sorted_tuples(&self) -> Vec<Tuple> {
        let mut out: Vec<Tuple> = self.iter().cloned().collect();
        out.sort();
        out
    }

    /// Adjust the count of `t` by `delta`.
    ///
    /// Returns `Some(true)` if the tuple became visible, `Some(false)` if it
    /// became invisible, and `None` if visibility did not change.
    pub fn adjust(&mut self, t: Tuple, delta: i64) -> Option<bool> {
        if delta == 0 {
            return None;
        }
        let entry = self.tuples.entry(t).or_insert(0);
        let before = *entry > 0;
        *entry += delta;
        let after = *entry > 0;
        let key_dead = *entry == 0;
        if key_dead {
            // Clean up zero-count entries to keep iteration cheap.
            // (We need the key to remove it; re-borrow via retain-free path.)
        }
        match (before, after) {
            (false, true) => Some(true),
            (true, false) => Some(false),
            _ => None,
        }
    }

    /// Remove entries whose count dropped to zero (housekeeping).
    pub fn compact(&mut self) {
        self.tuples.retain(|_, &mut c| c != 0);
    }

    /// Replace the contents with exactly the given tuples, each at count 1.
    /// Returns the (insertions, deletions) diff against the previous state.
    pub fn replace_with(&mut self, new_tuples: Vec<Tuple>) -> (Vec<Tuple>, Vec<Tuple>) {
        let mut target: HashMap<Tuple, i64> = HashMap::with_capacity(new_tuples.len());
        for t in new_tuples {
            *target.entry(t).or_insert(0) = 1;
        }
        let mut inserted = Vec::new();
        let mut deleted = Vec::new();
        for (t, &c) in &self.tuples {
            if c > 0 && !target.contains_key(t) {
                deleted.push(t.clone());
            }
        }
        for t in target.keys() {
            if !self.contains(t) {
                inserted.push(t.clone());
            }
        }
        self.tuples = target;
        (inserted, deleted)
    }
}

// ---------------------------------------------------------------------------
// Interned representation (engine-internal)
// ---------------------------------------------------------------------------

/// An interned attribute value: a copyable word pair (tag + payload).
///
/// The internal mirror of [`Value`]: strings are [`StrId`]s into the
/// engine's interner and floats are stored by their canonical bit pattern
/// (NaN normalised, `-0.0` folded into `+0.0`), so `==`/`Hash` on `IVal`
/// agree exactly with `==`/`Hash` on the corresponding [`Value`]s.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum IVal {
    Int(i64),
    /// Canonical bits of an [`F64`].
    Float(u64),
    Str(u32),
    Addr(u32),
    Bool(bool),
    Sym(u32),
}

impl IVal {
    /// Intern a public value (allocates a [`StrId`] for unseen strings).
    pub fn intern(v: &Value, strs: &mut SymbolTable) -> IVal {
        match v {
            Value::Int(i) => IVal::Int(*i),
            Value::Float(f) => IVal::Float(f.canonical_bits()),
            Value::Str(s) => IVal::Str(strs.intern(s)),
            Value::Addr(NodeId(n)) => IVal::Addr(*n),
            Value::Bool(b) => IVal::Bool(*b),
            Value::Sym(SymId(s)) => IVal::Sym(*s),
        }
    }

    /// Read-only lookup: `None` when the value is a string the engine has
    /// never interned — such a value cannot occur in any stored row.
    pub fn lookup(v: &Value, strs: &SymbolTable) -> Option<IVal> {
        match v {
            Value::Str(s) => strs.lookup(s).map(IVal::Str),
            other => {
                let mut unused = SymbolTable::default();
                // Non-string values never touch the table.
                Some(IVal::intern(other, &mut unused))
            }
        }
    }

    /// Convert back to the public representation.
    pub fn to_value(self, strs: &SymbolTable) -> Value {
        match self {
            IVal::Int(i) => Value::Int(i),
            IVal::Float(bits) => Value::Float(F64(f64::from_bits(bits))),
            IVal::Str(id) => Value::Str(strs.resolve(id).to_string()),
            IVal::Addr(n) => Value::Addr(NodeId(n)),
            IVal::Bool(b) => Value::Bool(b),
            IVal::Sym(s) => Value::Sym(SymId(s)),
        }
    }

    /// Numeric view, mirroring [`Value::as_f64`].
    pub fn as_f64(self) -> Option<f64> {
        match self {
            IVal::Int(i) => Some(i as f64),
            IVal::Float(bits) => Some(f64::from_bits(bits)),
            IVal::Bool(b) => Some(f64::from(u8::from(b))),
            _ => None,
        }
    }

    /// Boolean view, mirroring [`Value::as_bool`].
    pub fn as_bool(self) -> Option<bool> {
        match self {
            IVal::Bool(b) => Some(b),
            IVal::Int(i) => Some(i != 0),
            _ => None,
        }
    }

    /// Variant rank matching the derived [`Ord`] on [`Value`].
    fn rank(self) -> u8 {
        match self {
            IVal::Int(_) => 0,
            IVal::Float(_) => 1,
            IVal::Str(_) => 2,
            IVal::Addr(_) => 3,
            IVal::Bool(_) => 4,
            IVal::Sym(_) => 5,
        }
    }

    /// Total order identical to the public [`Value`] order (strings compare
    /// lexicographically through the interner, floats by `total_cmp`).
    pub fn cmp_public(self, other: IVal, strs: &SymbolTable) -> std::cmp::Ordering {
        match (self, other) {
            (IVal::Int(a), IVal::Int(b)) => a.cmp(&b),
            (IVal::Float(a), IVal::Float(b)) => f64::from_bits(a).total_cmp(&f64::from_bits(b)),
            (IVal::Str(a), IVal::Str(b)) => strs.resolve(a).cmp(strs.resolve(b)),
            (IVal::Addr(a), IVal::Addr(b)) => a.cmp(&b),
            (IVal::Bool(a), IVal::Bool(b)) => a.cmp(&b),
            (IVal::Sym(a), IVal::Sym(b)) => a.cmp(&b),
            (a, b) => {
                debug_assert_ne!(a.rank(), b.rank());
                a.rank().cmp(&b.rank())
            }
        }
    }
}

/// Columns stored inline before a row spills to the heap.
const INLINE_COLS: usize = 4;

/// A stored row: a flat array of [`IVal`] words, inline up to
/// [`INLINE_COLS`] columns (covers every relation in the paper's programs).
#[derive(Debug, Clone)]
pub(crate) enum IRow {
    Inline { len: u8, vals: [IVal; INLINE_COLS] },
    Heap(Box<[IVal]>),
}

impl IRow {
    /// Build a row from interned values.
    pub fn from_vals(vals: &[IVal]) -> IRow {
        if vals.len() <= INLINE_COLS {
            let mut inline = [IVal::Int(0); INLINE_COLS];
            inline[..vals.len()].copy_from_slice(vals);
            IRow::Inline {
                len: vals.len() as u8,
                vals: inline,
            }
        } else {
            IRow::Heap(vals.into())
        }
    }

    /// Intern a public tuple.
    pub fn from_tuple(tuple: &[Value], strs: &mut SymbolTable) -> IRow {
        let vals: Vec<IVal> = tuple.iter().map(|v| IVal::intern(v, strs)).collect();
        IRow::from_vals(&vals)
    }

    /// Read-only interning: `None` when the tuple contains a string the
    /// engine has never seen (so no stored row can equal it).
    pub fn lookup_tuple(tuple: &[Value], strs: &SymbolTable) -> Option<IRow> {
        let vals: Option<Vec<IVal>> = tuple.iter().map(|v| IVal::lookup(v, strs)).collect();
        vals.map(|v| IRow::from_vals(&v))
    }

    /// The row's columns.
    pub fn as_slice(&self) -> &[IVal] {
        match self {
            IRow::Inline { len, vals } => &vals[..*len as usize],
            IRow::Heap(vals) => vals,
        }
    }

    /// Arity of the row.
    pub fn len(&self) -> usize {
        match self {
            IRow::Inline { len, .. } => *len as usize,
            IRow::Heap(vals) => vals.len(),
        }
    }

    /// Public form of the row.
    pub fn to_tuple(&self, strs: &SymbolTable) -> Tuple {
        self.as_slice().iter().map(|v| v.to_value(strs)).collect()
    }

    /// Row order identical to the public tuple order.
    pub fn cmp_public(&self, other: &IRow, strs: &SymbolTable) -> std::cmp::Ordering {
        let a = self.as_slice();
        let b = other.as_slice();
        for (x, y) in a.iter().zip(b.iter()) {
            let ord = x.cmp_public(*y, strs);
            if ord != std::cmp::Ordering::Equal {
                return ord;
            }
        }
        a.len().cmp(&b.len())
    }
}

impl PartialEq for IRow {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for IRow {}
impl Hash for IRow {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

// ---------------------------------------------------------------------------
// Row hashing
// ---------------------------------------------------------------------------

/// One multiply-xor mixing step (FxHash-style).
#[inline]
fn mix(h: u64, word: u64) -> u64 {
    (h.rotate_left(5) ^ word).wrapping_mul(0x517c_c1b7_2722_0a95)
}

#[inline]
fn mix_ival(h: u64, v: IVal) -> u64 {
    let (tag, payload) = match v {
        IVal::Int(i) => (0u64, i as u64),
        IVal::Float(bits) => (1, bits),
        IVal::Str(s) => (2, u64::from(s)),
        IVal::Addr(n) => (3, u64::from(n)),
        IVal::Bool(b) => (4, u64::from(b)),
        IVal::Sym(s) => (5, u64::from(s)),
    };
    mix(mix(h, tag), payload)
}

/// Hash of a whole row (the arena key).
pub(crate) fn hash_row(vals: &[IVal]) -> u64 {
    let mut h = 0x9e37_79b9_7f4a_7c15;
    for &v in vals {
        h = mix_ival(h, v);
    }
    mix(h, vals.len() as u64)
}

/// Hash of a column projection — must fold values in exactly the same
/// order as [`hash_key`] folds the probe-key values.
pub(crate) fn hash_proj(vals: &[IVal], cols: &[u8]) -> u64 {
    let mut h = 0x9e37_79b9_7f4a_7c15;
    for &c in cols {
        h = mix_ival(h, vals[c as usize]);
    }
    h
}

/// Hash of a probe key (values already projected, in ascending-column
/// order, matching [`hash_proj`]).
pub(crate) fn hash_key(vals: impl IntoIterator<Item = IVal>) -> u64 {
    let mut h = 0x9e37_79b9_7f4a_7c15;
    for v in vals {
        h = mix_ival(h, v);
    }
    h
}

/// Pass-through hasher for maps keyed by an already-mixed `u64`.
#[derive(Default)]
pub(crate) struct PreHashed(u64);

impl Hasher for PreHashed {
    fn finish(&self) -> u64 {
        self.0
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 = mix(self.0, u64::from(b));
        }
    }
    fn write_u64(&mut self, n: u64) {
        self.0 = n;
    }
}

pub(crate) type HashU64Map<V> = HashMap<u64, V, BuildHasherDefault<PreHashed>>;

// ---------------------------------------------------------------------------
// Indexed relation store (engine-internal)
// ---------------------------------------------------------------------------

/// A secondary hash index over one bound-column set (and one arity — a
/// relation holding rows of several arities indexes each arity separately).
#[derive(Debug, Default)]
pub(crate) struct ColIndex {
    arity: u8,
    /// Indexed columns, ascending.
    cols: Vec<u8>,
    /// Projection hash -> arena indexes of *visible* rows.
    buckets: HashU64Map<Vec<u32>>,
}

/// The production engine's relation storage: a deduplicating arena of
/// interned rows with counted multiplicities, the parallel public form of
/// each row (served by borrow-based reads like [`crate::Engine::scan`]), an
/// O(1) visible count, and lazily built secondary indexes.
#[derive(Debug, Default)]
pub(crate) struct RelStore {
    rows: Vec<IRow>,
    /// Public form of each arena row, materialized lazily on the first
    /// borrow-based read (hot-path writes never pay for it).
    pubs: Vec<OnceCell<Tuple>>,
    counts: Vec<i64>,
    hashes: Vec<u64>,
    /// Row hash -> arena indexes (collision chain).
    lookup: HashU64Map<Vec<u32>>,
    visible: usize,
    indexes: Vec<ColIndex>,
}

impl RelStore {
    fn find(&self, row: &IRow, hash: u64) -> Option<u32> {
        self.lookup
            .get(&hash)?
            .iter()
            .copied()
            .find(|&i| self.rows[i as usize] == *row)
    }

    /// Adjust the count of `row` by `delta`; same contract as
    /// [`Relation::adjust`]. Secondary indexes and the visible count are
    /// maintained on every visibility transition.
    pub fn adjust(&mut self, row: IRow, delta: i64) -> Option<bool> {
        if delta == 0 {
            return None;
        }
        let hash = hash_row(row.as_slice());
        let i = match self.find(&row, hash) {
            Some(i) => i,
            None => {
                let i = self.rows.len() as u32;
                self.pubs.push(OnceCell::new());
                self.rows.push(row);
                self.counts.push(0);
                self.hashes.push(hash);
                self.lookup.entry(hash).or_default().push(i);
                i
            }
        };
        let iu = i as usize;
        let before = self.counts[iu] > 0;
        self.counts[iu] += delta;
        let after = self.counts[iu] > 0;
        match (before, after) {
            (false, true) => {
                self.visible += 1;
                self.index_update(i, true);
                Some(true)
            }
            (true, false) => {
                self.visible -= 1;
                self.index_update(i, false);
                Some(false)
            }
            _ => None,
        }
    }

    fn index_update(&mut self, i: u32, add: bool) {
        let row = self.rows[i as usize].as_slice();
        for ix in &mut self.indexes {
            if row.len() != ix.arity as usize {
                continue;
            }
            let key = hash_proj(row, &ix.cols);
            if add {
                ix.buckets.entry(key).or_default().push(i);
            } else if let Some(bucket) = ix.buckets.get_mut(&key) {
                if let Some(p) = bucket.iter().position(|&x| x == i) {
                    bucket.swap_remove(p);
                }
            }
        }
    }

    /// Number of visible rows — O(1).
    pub fn visible_len(&self) -> usize {
        self.visible
    }

    /// True when `row` is currently visible.
    pub fn contains_row(&self, row: &IRow) -> bool {
        self.find(row, hash_row(row.as_slice()))
            .is_some_and(|i| self.counts[i as usize] > 0)
    }

    /// Borrowing iterator over the public form of visible rows,
    /// materializing (and caching) each row's public tuple on first use.
    pub fn scan_pubs<'a>(&'a self, strs: &'a SymbolTable) -> impl Iterator<Item = &'a Tuple> {
        self.rows
            .iter()
            .zip(self.pubs.iter())
            .zip(self.counts.iter())
            .filter(|&(_, &c)| c > 0)
            .map(move |((row, cell), _)| cell.get_or_init(|| row.to_tuple(strs)))
    }

    /// Visible public tuples, sorted (same order as
    /// [`Relation::sorted_tuples`]).
    pub fn sorted_pubs(&self, strs: &SymbolTable) -> Vec<Tuple> {
        let mut out: Vec<Tuple> = self.scan_pubs(strs).cloned().collect();
        out.sort();
        out
    }

    /// Arena size (visible and tombstoned rows).
    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// The row at an arena index.
    pub fn row(&self, i: u32) -> &IRow {
        &self.rows[i as usize]
    }

    /// True when the arena row at `i` is visible.
    pub fn visible_at(&self, i: u32) -> bool {
        self.counts[i as usize] > 0
    }

    /// Index id for `(arity, cols)`, building the index on first use by
    /// scanning the visible rows of that arity.
    pub fn ensure_index(&mut self, arity: u8, cols: &[u8]) -> usize {
        if let Some(p) = self
            .indexes
            .iter()
            .position(|ix| ix.arity == arity && ix.cols == cols)
        {
            return p;
        }
        let mut ix = ColIndex {
            arity,
            cols: cols.to_vec(),
            buckets: HashU64Map::default(),
        };
        for (i, row) in self.rows.iter().enumerate() {
            if self.counts[i] > 0 && row.len() == arity as usize {
                ix.buckets
                    .entry(hash_proj(row.as_slice(), &ix.cols))
                    .or_default()
                    .push(i as u32);
            }
        }
        self.indexes.push(ix);
        self.indexes.len() - 1
    }

    /// Arena indexes of visible rows whose projection hashes to `key`
    /// (callers must re-verify columns — hash collisions are possible).
    pub fn probe(&self, index: usize, key: u64) -> &[u32] {
        self.indexes[index]
            .buckets
            .get(&key)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(vals: &[i64]) -> Tuple {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    #[test]
    fn adjust_tracks_visibility_transitions() {
        let mut r = Relation::new();
        assert_eq!(r.adjust(t(&[1, 2]), 1), Some(true));
        assert_eq!(r.adjust(t(&[1, 2]), 1), None); // still visible
        assert_eq!(r.adjust(t(&[1, 2]), -1), None);
        assert_eq!(r.adjust(t(&[1, 2]), -1), Some(false));
        assert!(!r.contains(&t(&[1, 2])));
        assert_eq!(r.adjust(t(&[1, 2]), 0), None);
    }

    #[test]
    fn len_and_iter_skip_invisible() {
        let mut r = Relation::new();
        r.adjust(t(&[1]), 1);
        r.adjust(t(&[2]), 1);
        r.adjust(t(&[2]), -1);
        r.compact();
        assert_eq!(r.len(), 1);
        assert_eq!(r.iter().count(), 1);
        assert!(r.contains(&t(&[1])));
    }

    #[test]
    fn sorted_tuples_is_deterministic() {
        let mut r = Relation::new();
        r.adjust(t(&[3, 1]), 1);
        r.adjust(t(&[1, 2]), 1);
        r.adjust(t(&[2, 0]), 1);
        assert_eq!(r.sorted_tuples(), vec![t(&[1, 2]), t(&[2, 0]), t(&[3, 1])]);
    }

    #[test]
    fn replace_with_computes_diff() {
        let mut r = Relation::new();
        r.adjust(t(&[1]), 1);
        r.adjust(t(&[2]), 1);
        let (ins, del) = r.replace_with(vec![t(&[2]), t(&[3])]);
        assert_eq!(ins, vec![t(&[3])]);
        assert_eq!(del, vec![t(&[1])]);
        assert!(r.contains(&t(&[2])));
        assert!(r.contains(&t(&[3])));
        assert!(!r.contains(&t(&[1])));
    }

    #[test]
    fn replace_with_empty_clears() {
        let mut r = Relation::new();
        r.adjust(t(&[1]), 1);
        let (ins, del) = r.replace_with(vec![]);
        assert!(ins.is_empty());
        assert_eq!(del, vec![t(&[1])]);
        assert!(r.is_empty());
    }

    #[test]
    fn negative_counts_keep_tuple_invisible() {
        let mut r = Relation::new();
        assert_eq!(r.adjust(t(&[5]), -1), None);
        assert!(!r.contains(&t(&[5])));
        assert_eq!(r.adjust(t(&[5]), 1), None); // back to zero, still invisible
        assert_eq!(r.adjust(t(&[5]), 1), Some(true));
    }
}
