//! The incremental Datalog evaluation engine.
//!
//! This reproduces the slice of RapidNet the paper relies on (Sec. 5.1):
//! *pipelined semi-naïve* (PSN) evaluation, in which tuples are processed one
//! delta at a time and rule heads are maintained incrementally via counting
//! view maintenance, plus the distributed convention that a rule head with a
//! location specifier addressed to another node is shipped over the network
//! instead of being materialized locally.
//!
//! Rules whose head contains aggregates (or whose body repeats a relation)
//! are maintained by full re-evaluation followed by diffing — semantically
//! identical, and the affected rules in the paper's programs are tiny.

use std::collections::{BTreeMap, HashMap, HashSet, VecDeque};

use crate::expr::{Bindings, Term};
use crate::rule::{BodyItem, HeadArg, Rule};
use crate::schema::{did_you_mean, IngestError, SchemaSet};
use crate::tuple::{Relation, Tuple};
use crate::value::{NodeId, Value};

/// A tuple addressed to another Cologne instance.
#[derive(Debug, Clone, PartialEq)]
pub struct RemoteTuple {
    /// Destination node.
    pub dest: NodeId,
    /// Relation name at the destination.
    pub relation: String,
    /// The tuple payload (including the location attribute).
    pub tuple: Tuple,
    /// True for insertion, false for deletion.
    pub insert: bool,
}

impl RemoteTuple {
    /// Size in bytes used for the communication-overhead accounting of
    /// Fig. 5: 4 bytes per attribute plus a small per-message header, an
    /// approximation of RapidNet's wire format.
    pub fn wire_size(&self) -> usize {
        20 + self.relation.len() + 4 * self.tuple.len()
    }
}

/// Counters describing engine activity.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Number of externally inserted/deleted tuples processed.
    pub external_deltas: u64,
    /// Number of rule firings (derivations attempted).
    pub derivations: u64,
    /// Number of head tuples that changed visibility.
    pub updates: u64,
    /// Number of tuples addressed to remote nodes.
    pub remote_sends: u64,
    /// Number of full aggregate re-evaluations.
    pub aggregate_recomputes: u64,
    /// Number of [`Engine::insert`]/[`Engine::delete`] calls that targeted a
    /// relation absent from both the EDB and the IDB (no stored facts, no
    /// rule mentions it, no schema declares it) — almost always a typo in
    /// the relation name. The legacy entry points still queue the tuple for
    /// compatibility; [`Engine::try_insert`] rejects it instead.
    pub unknown_relation_inserts: u64,
}

/// Net visibility changes of one relation since a delta-summary checkpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RelationDelta {
    /// Tuples that became visible.
    pub inserted: u64,
    /// Tuples that stopped being visible.
    pub deleted: u64,
}

impl RelationDelta {
    /// Total number of visibility changes.
    pub fn total(&self) -> u64 {
        self.inserted + self.deleted
    }
}

/// Per-relation summary of everything that changed since the last checkpoint
/// ([`Engine::take_delta_summary`]).
///
/// This is the contract the Cologne grounding stage consumes to decide
/// between a full re-grounding and an incremental one: a relation absent
/// from `changes` had no visible tuple inserted or deleted since the summary
/// was last taken — its contents are byte-identical to what the previous
/// grounding saw. Multiplicity-only changes (a duplicate insert of an
/// already-visible tuple, or a delete that leaves copies) do not dirty a
/// relation, matching the visibility semantics of [`Engine::tuples`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeltaSummary {
    /// Relations with at least one visibility change, with their counts.
    pub changes: BTreeMap<String, RelationDelta>,
}

impl DeltaSummary {
    /// True when nothing changed since the checkpoint.
    pub fn is_empty(&self) -> bool {
        self.changes.is_empty()
    }

    /// True when `relation` had no visibility change since the checkpoint.
    pub fn is_clean(&self, relation: &str) -> bool {
        !self.changes.contains_key(relation)
    }

    /// Names of the dirty relations, sorted.
    pub fn dirty_relations(&self) -> impl Iterator<Item = &str> {
        self.changes.keys().map(String::as_str)
    }

    /// Total visibility changes across all relations.
    pub fn total_changes(&self) -> u64 {
        self.changes.values().map(RelationDelta::total).sum()
    }

    fn record(&mut self, relation: &str, inserted: bool) {
        let entry = self.changes.entry(relation.to_string()).or_default();
        if inserted {
            entry.inserted += 1;
        } else {
            entry.deleted += 1;
        }
    }
}

#[derive(Debug, Clone)]
struct Delta {
    relation: String,
    tuple: Tuple,
    insert: bool,
}

/// The per-node Datalog engine.
pub struct Engine {
    node: NodeId,
    relations: HashMap<String, Relation>,
    rules: Vec<Rule>,
    /// relation name -> indices of rules that mention it in their body
    trigger: HashMap<String, Vec<usize>>,
    /// rules maintained by recompute-and-diff (aggregates, repeated body
    /// relations)
    recompute_rules: HashSet<usize>,
    /// previous output of recompute rules
    prev_output: HashMap<usize, Vec<Tuple>>,
    pending: VecDeque<Delta>,
    outbox: Vec<RemoteTuple>,
    stats: EngineStats,
    /// Visibility changes since the last [`Engine::take_delta_summary`].
    delta: DeltaSummary,
    /// Relation names mentioned by any installed rule (head or body) — the
    /// IDB part of the unknown-relation check.
    rule_relations: HashSet<String>,
    /// Declared relation schemas, checked by the validated ingest path.
    schemas: SchemaSet,
    /// Unknown relations already warned about (log-once).
    warned_unknown: HashSet<String>,
}

impl Engine {
    /// Create an engine for the given node.
    pub fn new(node: NodeId) -> Self {
        Engine {
            node,
            relations: HashMap::new(),
            rules: Vec::new(),
            trigger: HashMap::new(),
            recompute_rules: HashSet::new(),
            prev_output: HashMap::new(),
            pending: VecDeque::new(),
            outbox: Vec::new(),
            stats: EngineStats::default(),
            delta: DeltaSummary::default(),
            rule_relations: HashSet::new(),
            schemas: SchemaSet::new(),
            warned_unknown: HashSet::new(),
        }
    }

    /// The node this engine runs on.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// Engine statistics so far.
    pub fn stats(&self) -> &EngineStats {
        &self.stats
    }

    /// Visibility changes accumulated since the last
    /// [`Engine::take_delta_summary`] (cumulative, unlike the per-run
    /// counters of [`EngineStats`], which never reset).
    pub fn delta_summary(&self) -> &DeltaSummary {
        &self.delta
    }

    /// Take the accumulated delta summary and start a fresh checkpoint.
    ///
    /// The Cologne runtime calls this right before grounding a COP: the
    /// returned summary describes exactly what changed since the previous
    /// grounding, so clean relations can keep their previously grounded
    /// variables and constraints.
    pub fn take_delta_summary(&mut self) -> DeltaSummary {
        std::mem::take(&mut self.delta)
    }

    /// Install (or replace) the declared relation schemas. Tuples entering
    /// through [`Engine::try_insert`]/[`Engine::try_delete`] are validated
    /// against them; relations without a schema accept any tuple shape.
    pub fn set_schemas(&mut self, schemas: SchemaSet) {
        self.schemas = schemas;
    }

    /// The declared relation schemas.
    pub fn schemas(&self) -> &SchemaSet {
        &self.schemas
    }

    /// Install a rule. Rules may be added before or after facts.
    pub fn add_rule(&mut self, rule: Rule) {
        let idx = self.rules.len();
        self.rule_relations.insert(rule.head.relation.clone());
        for rel in rule.body_relations() {
            self.rule_relations.insert(rel.to_string());
        }
        let mut body_rels: Vec<&str> = rule.body_relations();
        let repeats = {
            let mut sorted = body_rels.clone();
            sorted.sort_unstable();
            sorted.windows(2).any(|w| w[0] == w[1])
        };
        if rule.is_aggregate() || repeats {
            self.recompute_rules.insert(idx);
        }
        body_rels.sort_unstable();
        body_rels.dedup();
        for rel in body_rels {
            self.trigger.entry(rel.to_string()).or_default().push(idx);
        }
        self.rules.push(rule);
    }

    /// Install several rules.
    pub fn add_rules(&mut self, rules: impl IntoIterator<Item = Rule>) {
        for r in rules {
            self.add_rule(r);
        }
    }

    /// Number of installed rules.
    pub fn num_rules(&self) -> usize {
        self.rules.len()
    }

    /// True when the engine has any reason to believe the relation exists:
    /// facts are stored under it, a rule mentions it, or a schema declares
    /// it.
    pub fn known_relation(&self, relation: &str) -> bool {
        self.relations.contains_key(relation)
            || self.rule_relations.contains(relation)
            || self.schemas.contains(relation)
    }

    /// A declared relation with a name similar to `relation`, for
    /// did-you-mean diagnostics.
    pub fn suggest_relation(&self, relation: &str) -> Option<String> {
        let mut names: Vec<&str> = self
            .relations
            .keys()
            .map(String::as_str)
            .chain(self.rule_relations.iter().map(String::as_str))
            .chain(self.schemas.names())
            .collect();
        names.sort_unstable();
        names.dedup();
        did_you_mean(relation, names)
    }

    /// Validate a tuple for ingestion: the relation must be known (see
    /// [`Engine::known_relation`]) and the tuple must match its schema.
    pub fn validate(&self, relation: &str, tuple: &Tuple) -> Result<(), IngestError> {
        if !self.known_relation(relation) {
            return Err(IngestError::UnknownRelation {
                relation: relation.to_string(),
                suggestion: self.suggest_relation(relation),
            });
        }
        self.schemas.check(relation, tuple)?;
        Ok(())
    }

    /// Queue an insertion after validating it (see [`Engine::validate`]).
    /// Nothing is queued on error, so malformed input — above all tuples
    /// received from remote nodes — cannot corrupt engine state.
    pub fn try_insert(&mut self, relation: &str, tuple: Tuple) -> Result<(), IngestError> {
        self.validate(relation, &tuple)?;
        self.queue(relation, tuple, true);
        Ok(())
    }

    /// Queue a deletion after validating it (see [`Engine::try_insert`]).
    pub fn try_delete(&mut self, relation: &str, tuple: Tuple) -> Result<(), IngestError> {
        self.validate(relation, &tuple)?;
        self.queue(relation, tuple, false);
        Ok(())
    }

    /// Queue an insertion of a base (or received) tuple.
    ///
    /// Legacy unchecked entry point: the tuple is queued whether or not the
    /// relation is known, but an unknown relation is counted into
    /// [`EngineStats::unknown_relation_inserts`] and warned about once —
    /// historically such a typo created a silent, never-read relation.
    /// Prefer [`Engine::try_insert`].
    pub fn insert(&mut self, relation: &str, tuple: Tuple) {
        self.note_unknown(relation);
        self.queue(relation, tuple, true);
    }

    /// Queue a deletion of a base (or received) tuple. Legacy unchecked
    /// entry point; see [`Engine::insert`] and prefer [`Engine::try_delete`].
    pub fn delete(&mut self, relation: &str, tuple: Tuple) {
        self.note_unknown(relation);
        self.queue(relation, tuple, false);
    }

    /// Count (and warn once about) a legacy ingest into an unknown relation.
    fn note_unknown(&mut self, relation: &str) {
        if self.known_relation(relation) {
            return;
        }
        self.stats.unknown_relation_inserts += 1;
        if self.warned_unknown.insert(relation.to_string()) {
            let suggestion = match self.suggest_relation(relation) {
                Some(s) => format!("; did you mean '{s}'?"),
                None => String::new(),
            };
            eprintln!(
                "[cologne-datalog] warning: tuple queued into unknown relation \
                 '{relation}' (no rule or schema mentions it){suggestion}"
            );
        }
    }

    fn queue(&mut self, relation: &str, tuple: Tuple, insert: bool) {
        self.pending.push_back(Delta {
            relation: relation.to_string(),
            tuple,
            insert,
        });
    }

    /// Replace the contents of a base relation with `tuples`, queueing the
    /// necessary insertions and deletions (used when a monitoring layer
    /// refreshes tables such as `vm` or `host`).
    pub fn set_relation(&mut self, relation: &str, tuples: Vec<Tuple>) {
        self.note_unknown(relation);
        let current: Vec<Tuple> = self
            .relations
            .get(relation)
            .map(|r| r.sorted_tuples())
            .unwrap_or_default();
        let new_set: HashSet<&Tuple> = tuples.iter().collect();
        let old_set: HashSet<&Tuple> = current.iter().collect();
        for t in &current {
            if !new_set.contains(t) {
                self.queue(relation, t.clone(), false);
            }
        }
        for t in &tuples {
            if !old_set.contains(t) {
                self.queue(relation, t.clone(), true);
            }
        }
    }

    /// Visible tuples of a relation (sorted, deterministic).
    pub fn tuples(&self, relation: &str) -> Vec<Tuple> {
        self.relations
            .get(relation)
            .map(|r| r.sorted_tuples())
            .unwrap_or_default()
    }

    /// True if the relation currently contains the tuple.
    pub fn contains(&self, relation: &str, tuple: &Tuple) -> bool {
        self.relations
            .get(relation)
            .is_some_and(|r| r.contains(tuple))
    }

    /// Number of visible tuples in a relation.
    pub fn relation_len(&self, relation: &str) -> usize {
        self.relations
            .get(relation)
            .map(|r| r.iter().count())
            .unwrap_or(0)
    }

    /// Borrowing iterator over the visible tuples of a relation, in
    /// unspecified order (use [`Engine::tuples`] when a deterministic order
    /// matters). No allocation, no cloning.
    pub fn scan(&self, relation: &str) -> impl Iterator<Item = &Tuple> {
        self.relations
            .get(relation)
            .into_iter()
            .flat_map(|r| r.iter())
    }

    /// Names of all relations that currently exist.
    pub fn relation_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.relations.keys().cloned().collect();
        names.sort();
        names
    }

    /// Borrowed names of all relations that currently exist, sorted. The
    /// allocation-light counterpart of [`Engine::relation_names`].
    pub fn relation_names_ref(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self.relations.keys().map(String::as_str).collect();
        names.sort_unstable();
        names
    }

    /// Drain tuples addressed to other nodes (produced by located rule heads).
    pub fn take_outbox(&mut self) -> Vec<RemoteTuple> {
        std::mem::take(&mut self.outbox)
    }

    /// Process all pending deltas to a local fixpoint.
    ///
    /// Returns the number of head updates applied. Remote tuples produced by
    /// located heads are collected in the outbox (see [`Engine::take_outbox`]).
    pub fn run(&mut self) -> u64 {
        let before = self.stats.updates;
        loop {
            let mut dirty: HashSet<usize> = HashSet::new();
            while let Some(delta) = self.pending.pop_front() {
                self.stats.external_deltas += 1;
                self.apply_delta(delta, &mut dirty);
            }
            if dirty.is_empty() {
                break;
            }
            let mut dirty_list: Vec<usize> = dirty.into_iter().collect();
            dirty_list.sort_unstable();
            for rule_idx in dirty_list {
                self.recompute_rule(rule_idx);
            }
            if self.pending.is_empty() {
                break;
            }
        }
        self.stats.updates - before
    }

    fn apply_delta(&mut self, delta: Delta, dirty: &mut HashSet<usize>) {
        let rel = self.relations.entry(delta.relation.clone()).or_default();
        let change = rel.adjust(delta.tuple.clone(), if delta.insert { 1 } else { -1 });
        let became_visible = match change {
            Some(v) => v,
            None => return, // multiplicity changed but visibility did not
        };
        self.stats.updates += 1;
        self.delta.record(&delta.relation, became_visible);

        let rule_indices: Vec<usize> = self
            .trigger
            .get(&delta.relation)
            .cloned()
            .unwrap_or_default();
        for rule_idx in rule_indices {
            if self.recompute_rules.contains(&rule_idx) {
                dirty.insert(rule_idx);
                continue;
            }
            self.fire_incremental(rule_idx, &delta.relation, &delta.tuple, became_visible);
        }
    }

    /// Fire a non-aggregate rule with the delta tuple pinned at its (unique)
    /// occurrence of `relation`.
    fn fire_incremental(&mut self, rule_idx: usize, relation: &str, tuple: &Tuple, insert: bool) {
        let rule = self.rules[rule_idx].clone();
        let pin_pos = rule.body.iter().position(|b| match b {
            BodyItem::Atom(a) => a.relation == relation,
            _ => false,
        });
        let pin_pos = match pin_pos {
            Some(p) => p,
            None => return,
        };
        let bindings_list = self.join_body(&rule.body, Some((pin_pos, tuple)));
        let mut head_changes: Vec<(Tuple, bool)> = Vec::new();
        for b in bindings_list {
            self.stats.derivations += 1;
            if let Ok(head_tuple) = self.instantiate_simple_head(&rule, &b) {
                head_changes.push((head_tuple, insert));
            }
        }
        for (head_tuple, ins) in head_changes {
            self.emit(&rule, head_tuple, ins);
        }
    }

    /// Recompute an aggregate (or repeated-relation) rule from scratch and
    /// apply the diff against its previous output.
    fn recompute_rule(&mut self, rule_idx: usize) {
        self.stats.aggregate_recomputes += 1;
        let rule = self.rules[rule_idx].clone();
        let bindings_list = self.join_body(&rule.body, None);
        let new_output: Vec<Tuple> = if rule.is_aggregate() {
            self.aggregate_head(&rule, &bindings_list)
        } else {
            let mut out = Vec::new();
            for b in &bindings_list {
                self.stats.derivations += 1;
                if let Ok(t) = self.instantiate_simple_head(&rule, b) {
                    out.push(t);
                }
            }
            out.sort();
            out.dedup();
            out
        };
        let prev = self
            .prev_output
            .insert(rule_idx, new_output.clone())
            .unwrap_or_default();
        let prev_set: HashSet<&Tuple> = prev.iter().collect();
        let new_set: HashSet<&Tuple> = new_output.iter().collect();
        let deletions: Vec<Tuple> = prev
            .iter()
            .filter(|t| !new_set.contains(*t))
            .cloned()
            .collect();
        let insertions: Vec<Tuple> = new_output
            .iter()
            .filter(|t| !prev_set.contains(*t))
            .cloned()
            .collect();
        for t in deletions {
            self.emit(&rule, t, false);
        }
        for t in insertions {
            self.emit(&rule, t, true);
        }
    }

    /// Compute the grouped, aggregated head tuples of a rule.
    fn aggregate_head(&mut self, rule: &Rule, bindings_list: &[Bindings]) -> Vec<Tuple> {
        // group key -> per-aggregate collected values
        let mut groups: HashMap<Vec<Value>, Vec<Vec<Value>>> = HashMap::new();
        let agg_count = rule
            .head
            .args
            .iter()
            .filter(|a| matches!(a, HeadArg::Agg(_, _)))
            .count();
        for b in bindings_list {
            self.stats.derivations += 1;
            let mut key = Vec::new();
            let mut ok = true;
            let mut collected: Vec<Value> = Vec::with_capacity(agg_count);
            for arg in &rule.head.args {
                match arg {
                    HeadArg::Term(Term::Const(c)) => key.push(c.clone()),
                    HeadArg::Term(Term::Var(v)) => match b.get(v) {
                        Some(val) => key.push(val.clone()),
                        None => {
                            ok = false;
                            break;
                        }
                    },
                    HeadArg::Agg(_, over) => match b.get(over) {
                        Some(val) => collected.push(val.clone()),
                        None => {
                            ok = false;
                            break;
                        }
                    },
                }
            }
            if !ok {
                continue;
            }
            let entry = groups
                .entry(key)
                .or_insert_with(|| vec![Vec::new(); agg_count]);
            for (slot, v) in entry.iter_mut().zip(collected) {
                slot.push(v);
            }
        }
        let mut out = Vec::with_capacity(groups.len());
        for (key, values_per_agg) in groups {
            let mut tuple = Vec::with_capacity(rule.head.args.len());
            let mut key_iter = key.into_iter();
            let mut agg_iter = values_per_agg.into_iter();
            for arg in &rule.head.args {
                match arg {
                    HeadArg::Term(_) => tuple.push(key_iter.next().expect("group key arity")),
                    HeadArg::Agg(func, _) => {
                        let vals = agg_iter.next().expect("aggregate arity");
                        tuple.push(func.compute(&vals));
                    }
                }
            }
            out.push(tuple);
        }
        out.sort();
        out
    }

    fn instantiate_simple_head(
        &self,
        rule: &Rule,
        bindings: &Bindings,
    ) -> Result<Tuple, crate::expr::EvalError> {
        let mut out = Vec::with_capacity(rule.head.args.len());
        for arg in &rule.head.args {
            match arg {
                HeadArg::Term(Term::Const(c)) => out.push(c.clone()),
                HeadArg::Term(Term::Var(v)) => match bindings.get(v) {
                    Some(val) => out.push(val.clone()),
                    None => {
                        return Err(crate::expr::EvalError::UnboundVariable(v.clone()));
                    }
                },
                HeadArg::Agg(_, _) => {
                    unreachable!("aggregate heads are handled by recompute_rule")
                }
            }
        }
        Ok(out)
    }

    /// Apply a head-tuple change: local insert/delete, or remote send when
    /// the head is located at another node.
    fn emit(&mut self, rule: &Rule, tuple: Tuple, insert: bool) {
        if rule.head.located {
            if let Some(Value::Addr(dest)) = tuple.first() {
                if *dest != self.node {
                    self.stats.remote_sends += 1;
                    self.outbox.push(RemoteTuple {
                        dest: *dest,
                        relation: rule.head.relation.clone(),
                        tuple,
                        insert,
                    });
                    return;
                }
            }
        }
        self.pending.push_back(Delta {
            relation: rule.head.relation.clone(),
            tuple,
            insert,
        });
    }

    /// Join the body items against the current database. If `pin` is given,
    /// the atom at that body position matches only the pinned tuple.
    fn join_body(&self, body: &[BodyItem], pin: Option<(usize, &Tuple)>) -> Vec<Bindings> {
        let mut frontier = vec![Bindings::new()];
        for (idx, item) in body.iter().enumerate() {
            if frontier.is_empty() {
                return frontier;
            }
            let mut next = Vec::with_capacity(frontier.len());
            match item {
                BodyItem::Atom(atom) => {
                    if let Some((pinned_idx, pinned_tuple)) = pin {
                        if pinned_idx == idx {
                            for b in &frontier {
                                let mut nb = b.clone();
                                if atom.match_tuple(pinned_tuple, &mut nb) {
                                    next.push(nb);
                                }
                            }
                            frontier = next;
                            continue;
                        }
                    }
                    let empty = Relation::new();
                    let rel = self.relations.get(&atom.relation).unwrap_or(&empty);
                    for b in &frontier {
                        for t in rel.iter() {
                            let mut nb = b.clone();
                            if atom.match_tuple(t, &mut nb) {
                                next.push(nb);
                            }
                        }
                    }
                }
                BodyItem::Filter(expr) => {
                    for b in &frontier {
                        if expr.eval_bool(b).unwrap_or(false) {
                            next.push(b.clone());
                        }
                    }
                }
                BodyItem::Assign(var, expr) => {
                    for b in &frontier {
                        if let Ok(v) = expr.eval(b) {
                            let mut nb = b.clone();
                            nb.set(var, v);
                            next.push(nb);
                        }
                    }
                }
            }
            frontier = next;
        }
        frontier
    }

    /// Evaluate an ad-hoc body (query) against the current database and
    /// return the resulting bindings. Used by the Cologne runtime when
    /// grounding solver rules.
    pub fn query(&self, body: &[BodyItem]) -> Vec<Bindings> {
        self.join_body(body, None)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{Expr, Op};
    use crate::rule::{AggFunc, Atom, Head};
    use crate::schema::SchemaError;

    fn int_tuple(vals: &[i64]) -> Tuple {
        vals.iter().map(|&v| Value::Int(v)).collect()
    }

    fn engine() -> Engine {
        Engine::new(NodeId(0))
    }

    /// path(X,Y) <- link(X,Y);  path(X,Z) <- link(X,Y), path(Y,Z)
    fn transitive_closure_rules() -> Vec<Rule> {
        vec![
            Rule::new(
                "r1",
                Head::simple("path", vec![Term::var("X"), Term::var("Y")]),
                vec![BodyItem::Atom(Atom::new(
                    "link",
                    vec![Term::var("X"), Term::var("Y")],
                ))],
            ),
            Rule::new(
                "r2",
                Head::simple("path", vec![Term::var("X"), Term::var("Z")]),
                vec![
                    BodyItem::Atom(Atom::new("link", vec![Term::var("X"), Term::var("Y")])),
                    BodyItem::Atom(Atom::new("path", vec![Term::var("Y"), Term::var("Z")])),
                ],
            ),
        ]
    }

    #[test]
    fn transitive_closure_incremental_insert() {
        let mut e = engine();
        e.add_rules(transitive_closure_rules());
        e.insert("link", int_tuple(&[1, 2]));
        e.insert("link", int_tuple(&[2, 3]));
        e.run();
        assert!(e.contains("path", &int_tuple(&[1, 2])));
        assert!(e.contains("path", &int_tuple(&[2, 3])));
        assert!(e.contains("path", &int_tuple(&[1, 3])));
        // now extend the chain
        e.insert("link", int_tuple(&[3, 4]));
        e.run();
        assert!(e.contains("path", &int_tuple(&[1, 4])));
        assert!(e.contains("path", &int_tuple(&[2, 4])));
    }

    #[test]
    fn transitive_closure_incremental_delete() {
        let mut e = engine();
        e.add_rules(transitive_closure_rules());
        for l in [[1, 2], [2, 3], [3, 4]] {
            e.insert("link", int_tuple(&l));
        }
        e.run();
        assert!(e.contains("path", &int_tuple(&[1, 4])));
        e.delete("link", int_tuple(&[2, 3]));
        e.run();
        assert!(e.contains("path", &int_tuple(&[1, 2])));
        assert!(e.contains("path", &int_tuple(&[3, 4])));
        assert!(!e.contains("path", &int_tuple(&[1, 3])));
        assert!(!e.contains("path", &int_tuple(&[1, 4])));
        assert!(!e.contains("path", &int_tuple(&[2, 4])));
    }

    #[test]
    fn filters_and_assignments() {
        // big(X, Y2) <- item(X, Y), Y > 10, Y2 := Y * 2
        let mut e = engine();
        e.add_rule(Rule::new(
            "r1",
            Head::simple("big", vec![Term::var("X"), Term::var("Y2")]),
            vec![
                BodyItem::Atom(Atom::new("item", vec![Term::var("X"), Term::var("Y")])),
                BodyItem::Filter(Expr::bin(Op::Gt, Expr::var("Y"), Expr::int(10))),
                BodyItem::Assign(
                    "Y2".into(),
                    Expr::bin(Op::Mul, Expr::var("Y"), Expr::int(2)),
                ),
            ],
        ));
        e.insert("item", int_tuple(&[1, 5]));
        e.insert("item", int_tuple(&[2, 20]));
        e.run();
        assert_eq!(e.relation_len("big"), 1);
        assert!(e.contains("big", &int_tuple(&[2, 40])));
    }

    #[test]
    fn aggregate_sum_maintained_incrementally() {
        // hostCpu(H, SUM<C>) <- assign(V, H, C)
        let mut e = engine();
        e.add_rule(Rule::new(
            "d1",
            Head {
                relation: "hostCpu".into(),
                args: vec![
                    HeadArg::Term(Term::var("H")),
                    HeadArg::Agg(AggFunc::Sum, "C".into()),
                ],
                located: false,
            },
            vec![BodyItem::Atom(Atom::new(
                "assign",
                vec![Term::var("V"), Term::var("H"), Term::var("C")],
            ))],
        ));
        e.insert("assign", int_tuple(&[1, 10, 30]));
        e.insert("assign", int_tuple(&[2, 10, 20]));
        e.insert("assign", int_tuple(&[3, 11, 40]));
        e.run();
        assert!(e.contains("hostCpu", &int_tuple(&[10, 50])));
        assert!(e.contains("hostCpu", &int_tuple(&[11, 40])));
        // deletion updates the aggregate
        e.delete("assign", int_tuple(&[2, 10, 20]));
        e.run();
        assert!(e.contains("hostCpu", &int_tuple(&[10, 30])));
        assert!(!e.contains("hostCpu", &int_tuple(&[10, 50])));
        assert_eq!(e.relation_len("hostCpu"), 2);
    }

    #[test]
    fn aggregate_feeding_another_rule() {
        // count(C) <- x(V);  alarm(C) <- count(C), C >= 2
        let mut e = engine();
        e.add_rule(Rule::new(
            "d1",
            Head {
                relation: "count".into(),
                args: vec![HeadArg::Agg(AggFunc::Count, "V".into())],
                located: false,
            },
            vec![BodyItem::Atom(Atom::new("x", vec![Term::var("V")]))],
        ));
        e.add_rule(Rule::new(
            "r1",
            Head::simple("alarm", vec![Term::var("C")]),
            vec![
                BodyItem::Atom(Atom::new("count", vec![Term::var("C")])),
                BodyItem::Filter(Expr::bin(Op::Ge, Expr::var("C"), Expr::int(2))),
            ],
        ));
        e.insert("x", int_tuple(&[1]));
        e.run();
        assert_eq!(e.relation_len("alarm"), 0);
        e.insert("x", int_tuple(&[2]));
        e.run();
        assert!(e.contains("alarm", &int_tuple(&[2])));
        e.delete("x", int_tuple(&[1]));
        e.run();
        assert_eq!(e.relation_len("alarm"), 0);
    }

    #[test]
    fn located_head_goes_to_outbox() {
        // ping(@Y, X) <- link(@X, Y)
        let mut e = engine();
        e.add_rule(Rule::new(
            "r1",
            Head {
                relation: "ping".into(),
                args: vec![HeadArg::Term(Term::var("Y")), HeadArg::Term(Term::var("X"))],
                located: true,
            },
            vec![BodyItem::Atom(Atom::located(
                "link",
                vec![Term::var("X"), Term::var("Y")],
            ))],
        ));
        e.insert("link", vec![Value::Addr(NodeId(0)), Value::Addr(NodeId(7))]);
        e.run();
        let out = e.take_outbox();
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].dest, NodeId(7));
        assert_eq!(out[0].relation, "ping");
        assert!(out[0].insert);
        assert!(out[0].wire_size() > 0);
        // nothing materialized locally
        assert_eq!(e.relation_len("ping"), 0);
        assert_eq!(e.stats().remote_sends, 1);
    }

    #[test]
    fn located_head_to_self_stays_local() {
        let mut e = engine();
        e.add_rule(Rule::new(
            "r1",
            Head {
                relation: "echo".into(),
                args: vec![HeadArg::Term(Term::var("X"))],
                located: true,
            },
            vec![BodyItem::Atom(Atom::located(
                "link",
                vec![Term::var("X"), Term::var("Y")],
            ))],
        ));
        e.insert("link", vec![Value::Addr(NodeId(0)), Value::Addr(NodeId(7))]);
        e.run();
        assert!(e.take_outbox().is_empty());
        assert!(e.contains("echo", &vec![Value::Addr(NodeId(0))]));
    }

    #[test]
    fn set_relation_diffs() {
        let mut e = engine();
        e.insert("vm", int_tuple(&[1, 50]));
        e.insert("vm", int_tuple(&[2, 60]));
        e.run();
        e.set_relation("vm", vec![int_tuple(&[2, 65]), int_tuple(&[3, 10])]);
        e.run();
        let tuples = e.tuples("vm");
        assert_eq!(tuples, vec![int_tuple(&[2, 65]), int_tuple(&[3, 10])]);
    }

    #[test]
    fn query_evaluates_ad_hoc_bodies() {
        let mut e = engine();
        e.insert("vm", int_tuple(&[1, 50]));
        e.insert("host", int_tuple(&[10, 20]));
        e.run();
        let body = vec![
            BodyItem::Atom(Atom::new("vm", vec![Term::var("V"), Term::var("C")])),
            BodyItem::Atom(Atom::new("host", vec![Term::var("H"), Term::var("HC")])),
        ];
        let results = e.query(&body);
        assert_eq!(results.len(), 1);
        assert_eq!(results[0].get("V"), Some(&Value::Int(1)));
        assert_eq!(results[0].get("H"), Some(&Value::Int(10)));
    }

    #[test]
    fn duplicate_inserts_do_not_double_derive() {
        let mut e = engine();
        e.add_rule(Rule::new(
            "r1",
            Head::simple("out", vec![Term::var("X")]),
            vec![BodyItem::Atom(Atom::new("in", vec![Term::var("X")]))],
        ));
        e.insert("in", int_tuple(&[1]));
        e.insert("in", int_tuple(&[1]));
        e.run();
        assert_eq!(e.relation_len("out"), 1);
        // removing one copy keeps the fact visible; removing both hides it
        e.delete("in", int_tuple(&[1]));
        e.run();
        assert!(e.contains("out", &int_tuple(&[1])));
        e.delete("in", int_tuple(&[1]));
        e.run();
        assert!(!e.contains("out", &int_tuple(&[1])));
    }

    #[test]
    fn stats_are_populated() {
        let mut e = engine();
        e.add_rules(transitive_closure_rules());
        e.insert("link", int_tuple(&[1, 2]));
        e.insert("link", int_tuple(&[2, 3]));
        e.run();
        let s = e.stats();
        assert!(s.external_deltas >= 2);
        assert!(s.derivations > 0);
        assert!(s.updates > 0);
    }

    #[test]
    fn delta_summary_tracks_visibility_changes() {
        let mut e = engine();
        e.add_rules(transitive_closure_rules());
        e.insert("link", int_tuple(&[1, 2]));
        e.insert("link", int_tuple(&[2, 3]));
        e.run();
        let delta = e.take_delta_summary();
        assert!(!delta.is_empty());
        assert_eq!(delta.changes["link"].inserted, 2);
        assert_eq!(delta.changes["link"].deleted, 0);
        // derived updates are part of the summary too
        assert_eq!(delta.changes["path"].inserted, 3);
        assert!(!delta.is_clean("link"));
        assert!(delta.is_clean("unrelated"));
        assert_eq!(delta.total_changes(), 5);
        assert_eq!(
            delta.dirty_relations().collect::<Vec<_>>(),
            vec!["link", "path"]
        );
        // the checkpoint resets the summary
        assert!(e.delta_summary().is_empty());
        // a deletion dirties both the base and the derived relation
        e.delete("link", int_tuple(&[2, 3]));
        e.run();
        let delta = e.take_delta_summary();
        assert_eq!(delta.changes["link"].deleted, 1);
        assert_eq!(delta.changes["path"].deleted, 2);
    }

    #[test]
    fn delta_summary_ignores_multiplicity_only_changes() {
        let mut e = engine();
        e.insert("in", int_tuple(&[1]));
        e.run();
        e.take_delta_summary();
        // duplicate insert: multiplicity 2, visibility unchanged
        e.insert("in", int_tuple(&[1]));
        e.run();
        assert!(e.delta_summary().is_empty());
        // one delete: multiplicity 1, still visible
        e.delete("in", int_tuple(&[1]));
        e.run();
        assert!(e.delta_summary().is_empty());
        // second delete: tuple disappears
        e.delete("in", int_tuple(&[1]));
        e.run();
        assert_eq!(e.delta_summary().changes["in"].deleted, 1);
    }

    #[test]
    fn set_relation_with_identical_contents_is_clean() {
        let mut e = engine();
        e.insert("vm", int_tuple(&[1, 50]));
        e.insert("vm", int_tuple(&[2, 60]));
        e.run();
        e.take_delta_summary();
        // a monitoring refresh with unchanged contents produces no deltas
        e.set_relation("vm", vec![int_tuple(&[1, 50]), int_tuple(&[2, 60])]);
        e.run();
        assert!(e.delta_summary().is_empty());
    }

    #[test]
    fn unknown_relation_inserts_are_counted_not_dropped() {
        let mut e = engine();
        e.add_rules(transitive_closure_rules());
        // "lnik" is a typo: no rule mentions it, no facts exist under it.
        e.insert("lnik", int_tuple(&[1, 2]));
        e.delete("lnik", int_tuple(&[1, 2]));
        assert_eq!(e.stats().unknown_relation_inserts, 2);
        // known relations (rule bodies/heads) do not count
        e.insert("link", int_tuple(&[1, 2]));
        e.insert("path", int_tuple(&[9, 9]));
        assert_eq!(e.stats().unknown_relation_inserts, 2);
        // legacy behavior preserved: the tuple was still queued
        e.run();
        assert!(e.contains("lnik", &int_tuple(&[1, 2])) || e.relation_len("lnik") == 0);
        assert_eq!(e.relation_len("link"), 1);
    }

    #[test]
    fn try_insert_rejects_unknown_relation_with_suggestion() {
        let mut e = engine();
        e.add_rules(transitive_closure_rules());
        let err = e.try_insert("lnik", int_tuple(&[1, 2])).unwrap_err();
        match err {
            IngestError::UnknownRelation {
                relation,
                suggestion,
            } => {
                assert_eq!(relation, "lnik");
                assert_eq!(suggestion.as_deref(), Some("link"));
            }
            other => panic!("unexpected error: {other:?}"),
        }
        // nothing was queued
        e.run();
        assert_eq!(e.relation_len("lnik"), 0);
        assert_eq!(e.stats().unknown_relation_inserts, 0);
        // valid ingest goes through
        e.try_insert("link", int_tuple(&[1, 2])).unwrap();
        e.run();
        assert!(e.contains("path", &int_tuple(&[1, 2])));
        e.try_delete("link", int_tuple(&[1, 2])).unwrap();
        e.run();
        assert!(!e.contains("path", &int_tuple(&[1, 2])));
    }

    #[test]
    fn try_insert_enforces_schemas() {
        use crate::schema::{SchemaSet, TupleSchema};
        use crate::value::ValueKind;
        let mut e = engine();
        let mut schemas = SchemaSet::new();
        schemas.insert(TupleSchema::new(
            "link",
            vec![ValueKind::Addr, ValueKind::Addr],
        ));
        e.set_schemas(schemas);
        assert!(e.schemas().contains("link"));
        // wrong arity
        let err = e
            .try_insert("link", vec![Value::Addr(NodeId(0))])
            .unwrap_err();
        assert!(matches!(
            err,
            IngestError::Schema(SchemaError::Arity { .. })
        ));
        // wrong kind
        let err = e
            .try_insert("link", vec![Value::Addr(NodeId(0)), Value::Int(1)])
            .unwrap_err();
        assert!(matches!(
            err,
            IngestError::Schema(SchemaError::Kind { position: 1, .. })
        ));
        // well-formed tuple accepted (schema also makes the relation known)
        e.try_insert("link", vec![Value::Addr(NodeId(0)), Value::Addr(NodeId(1))])
            .unwrap();
        e.run();
        assert_eq!(e.relation_len("link"), 1);
    }

    #[test]
    fn scan_and_relation_names_ref_borrow() {
        let mut e = engine();
        e.insert("b", int_tuple(&[2]));
        e.insert("a", int_tuple(&[1]));
        e.run();
        assert_eq!(e.relation_names_ref(), vec!["a", "b"]);
        let scanned: Vec<&Tuple> = e.scan("a").collect();
        assert_eq!(scanned, vec![&int_tuple(&[1])]);
        assert_eq!(e.scan("missing").count(), 0);
    }

    #[test]
    fn relation_names_sorted() {
        let mut e = engine();
        e.insert("b", int_tuple(&[1]));
        e.insert("a", int_tuple(&[1]));
        e.run();
        assert_eq!(e.relation_names(), vec!["a".to_string(), "b".to_string()]);
    }
}
