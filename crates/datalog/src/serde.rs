//! Binary serialization of [`Value`]s and [`Tuple`]s for the wire.
//!
//! The `cologne-serve` protocol ships tuples between client and server as
//! length-prefixed binary frames; this module owns the innermost layer —
//! how one value is laid out in bytes — so the encoding lives next to the
//! [`Value`] type it describes and every consumer agrees on it.
//!
//! Layout (all integers little-endian):
//!
//! | tag | variant | payload |
//! |-----|---------|---------|
//! | 0   | `Int`   | i64     |
//! | 1   | `Float` | f64 canonical bits (NaN normalized, `-0.0` → `+0.0`) |
//! | 2   | `Str`   | u32 length + UTF-8 bytes |
//! | 3   | `Addr`  | u32 node id |
//! | 4   | `Bool`  | u8 (0 or 1) |
//! | 5   | `Sym`   | u32 symbol id |
//!
//! A tuple is a u32 arity followed by its values. Decoding is total: any
//! byte sequence either decodes or returns a typed [`DecodeError`] — it
//! never panics and never allocates proportionally to a corrupt length
//! field (lengths are checked against the remaining input first).

use crate::value::{NodeId, SymId, Value, F64};
use crate::Tuple;

/// Why a byte sequence failed to decode.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DecodeError {
    /// The input ended before the value did.
    Truncated,
    /// An unknown value tag.
    BadTag(u8),
    /// A string payload was not valid UTF-8.
    BadUtf8,
    /// A boolean byte was neither 0 nor 1.
    BadBool(u8),
}

impl std::fmt::Display for DecodeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DecodeError::Truncated => write!(f, "input truncated mid-value"),
            DecodeError::BadTag(t) => write!(f, "unknown value tag {t}"),
            DecodeError::BadUtf8 => write!(f, "string payload is not valid UTF-8"),
            DecodeError::BadBool(b) => write!(f, "boolean byte must be 0 or 1, got {b}"),
        }
    }
}

impl std::error::Error for DecodeError {}

/// Append the encoding of one value.
pub fn encode_value(value: &Value, out: &mut Vec<u8>) {
    match value {
        Value::Int(i) => {
            out.push(0);
            out.extend_from_slice(&i.to_le_bytes());
        }
        Value::Float(x) => {
            out.push(1);
            out.extend_from_slice(&x.to_wire_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(2);
            out.extend_from_slice(&(s.len() as u32).to_le_bytes());
            out.extend_from_slice(s.as_bytes());
        }
        Value::Addr(n) => {
            out.push(3);
            out.extend_from_slice(&n.0.to_le_bytes());
        }
        Value::Bool(b) => {
            out.push(4);
            out.push(u8::from(*b));
        }
        Value::Sym(s) => {
            out.push(5);
            out.extend_from_slice(&s.0.to_le_bytes());
        }
    }
}

/// Append the encoding of one tuple (u32 arity + values).
pub fn encode_tuple(tuple: &Tuple, out: &mut Vec<u8>) {
    out.extend_from_slice(&(tuple.len() as u32).to_le_bytes());
    for value in tuple {
        encode_value(value, out);
    }
}

fn take<'a>(buf: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8], DecodeError> {
    let end = pos.checked_add(n).ok_or(DecodeError::Truncated)?;
    if end > buf.len() {
        return Err(DecodeError::Truncated);
    }
    let slice = &buf[*pos..end];
    *pos = end;
    Ok(slice)
}

fn take_u32(buf: &[u8], pos: &mut usize) -> Result<u32, DecodeError> {
    Ok(u32::from_le_bytes(take(buf, pos, 4)?.try_into().unwrap()))
}

/// Decode one value starting at `*pos`, advancing it past the value.
pub fn decode_value(buf: &[u8], pos: &mut usize) -> Result<Value, DecodeError> {
    let tag = take(buf, pos, 1)?[0];
    match tag {
        0 => {
            let raw = take(buf, pos, 8)?;
            Ok(Value::Int(i64::from_le_bytes(raw.try_into().unwrap())))
        }
        1 => {
            let raw = take(buf, pos, 8)?;
            let bits = u64::from_le_bytes(raw.try_into().unwrap());
            Ok(Value::Float(F64(f64::from_bits(bits))))
        }
        2 => {
            let len = take_u32(buf, pos)? as usize;
            let raw = take(buf, pos, len)?;
            let s = std::str::from_utf8(raw).map_err(|_| DecodeError::BadUtf8)?;
            Ok(Value::Str(s.to_string()))
        }
        3 => Ok(Value::Addr(NodeId(take_u32(buf, pos)?))),
        4 => match take(buf, pos, 1)?[0] {
            0 => Ok(Value::Bool(false)),
            1 => Ok(Value::Bool(true)),
            b => Err(DecodeError::BadBool(b)),
        },
        5 => Ok(Value::Sym(SymId(take_u32(buf, pos)?))),
        t => Err(DecodeError::BadTag(t)),
    }
}

/// Decode one tuple starting at `*pos`, advancing it past the tuple.
pub fn decode_tuple(buf: &[u8], pos: &mut usize) -> Result<Tuple, DecodeError> {
    let arity = take_u32(buf, pos)? as usize;
    // The smallest value is 2 bytes (tag + bool), so a corrupt arity larger
    // than half the remaining input cannot possibly decode — reject before
    // reserving memory for it.
    if arity > buf.len().saturating_sub(*pos) {
        return Err(DecodeError::Truncated);
    }
    let mut tuple = Vec::with_capacity(arity);
    for _ in 0..arity {
        tuple.push(decode_value(buf, pos)?);
    }
    Ok(tuple)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: Value) -> Value {
        let mut buf = Vec::new();
        encode_value(&v, &mut buf);
        let mut pos = 0;
        let back = decode_value(&buf, &mut pos).unwrap();
        assert_eq!(pos, buf.len(), "no trailing bytes");
        back
    }

    #[test]
    fn values_round_trip() {
        for v in [
            Value::Int(0),
            Value::Int(i64::MIN),
            Value::Int(i64::MAX),
            Value::Float(F64(2.5)),
            Value::Float(F64(-1.0e300)),
            Value::Str(String::new()),
            Value::Str("héllo wörld".into()),
            Value::Addr(NodeId(u32::MAX)),
            Value::Bool(true),
            Value::Bool(false),
            Value::Sym(SymId(7)),
        ] {
            assert_eq!(roundtrip(v.clone()), v);
        }
    }

    #[test]
    fn float_canonicalization_survives_the_wire() {
        // -0.0 and NaN encode as their canonical bits, so equality semantics
        // are preserved across a round trip.
        assert_eq!(roundtrip(Value::Float(F64(-0.0))), Value::Float(F64(0.0)));
        let nan = roundtrip(Value::Float(F64(f64::NAN)));
        assert_eq!(nan, Value::Float(F64(f64::NAN)));
    }

    #[test]
    fn tuples_round_trip() {
        let t: Tuple = vec![Value::Int(1), Value::Str("x".into()), Value::Bool(true)];
        let mut buf = Vec::new();
        encode_tuple(&t, &mut buf);
        let mut pos = 0;
        assert_eq!(decode_tuple(&buf, &mut pos).unwrap(), t);
        assert_eq!(pos, buf.len());
    }

    #[test]
    fn corrupt_input_errors_instead_of_panicking() {
        // unknown tag
        let mut pos = 0;
        assert_eq!(decode_value(&[9], &mut pos), Err(DecodeError::BadTag(9)));
        // truncated int
        let mut pos = 0;
        assert_eq!(
            decode_value(&[0, 1, 2], &mut pos),
            Err(DecodeError::Truncated)
        );
        // string length past the end of input
        let mut buf = vec![2];
        buf.extend_from_slice(&100u32.to_le_bytes());
        buf.push(b'a');
        let mut pos = 0;
        assert_eq!(decode_value(&buf, &mut pos), Err(DecodeError::Truncated));
        // invalid UTF-8
        let mut buf = vec![2];
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.push(0xFF);
        let mut pos = 0;
        assert_eq!(decode_value(&buf, &mut pos), Err(DecodeError::BadUtf8));
        // bad bool byte
        let mut pos = 0;
        assert_eq!(
            decode_value(&[4, 3], &mut pos),
            Err(DecodeError::BadBool(3))
        );
        // huge declared arity on a short buffer must not allocate or panic
        let mut buf = Vec::new();
        buf.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut pos = 0;
        assert_eq!(decode_tuple(&buf, &mut pos), Err(DecodeError::Truncated));
        // empty input
        let mut pos = 0;
        assert_eq!(decode_value(&[], &mut pos), Err(DecodeError::Truncated));
    }
}
