//! Relation schemas and eager tuple validation.
//!
//! The engine historically accepted any `(relation, tuple)` pair: a typo in a
//! relation name created a fresh, never-read relation, and an arity or kind
//! mismatch surfaced only as a rule that silently never matched. This module
//! is the datalog-level half of the typed-ingestion contract: a
//! [`SchemaSet`] describes the expected shape of each relation (one
//! [`TupleSchema`] per relation: arity plus a [`ValueKind`] per column), and
//! [`crate::Engine::try_insert`]/[`crate::Engine::try_delete`] check tuples
//! against it *before* they are queued, so malformed input — above all
//! tuples received from a remote node — is rejected instead of corrupting
//! state.
//!
//! Schemas are usually derived from a compiled Colog program (the
//! `SchemaCatalog` of the `cologne-colog` crate) and installed with
//! [`crate::Engine::set_schemas`]; hand-built sets work the same way.

use std::collections::BTreeMap;

use crate::tuple::Tuple;
use crate::value::ValueKind;

/// Expected shape of one relation: its arity and the kind of each column.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TupleSchema {
    /// Relation name.
    pub relation: String,
    /// One [`ValueKind`] per column; the length is the relation's arity.
    pub columns: Vec<ValueKind>,
}

impl TupleSchema {
    /// Build a schema.
    pub fn new(relation: &str, columns: Vec<ValueKind>) -> Self {
        TupleSchema {
            relation: relation.to_string(),
            columns,
        }
    }

    /// The relation's arity.
    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Check a tuple against the schema: the arity must match and every
    /// column kind must admit the corresponding value.
    pub fn check(&self, tuple: &Tuple) -> Result<(), SchemaError> {
        if tuple.len() != self.columns.len() {
            return Err(SchemaError::Arity {
                relation: self.relation.clone(),
                expected: self.columns.len(),
                found: tuple.len(),
            });
        }
        for (position, (kind, value)) in self.columns.iter().zip(tuple.iter()).enumerate() {
            if !kind.admits(value) {
                return Err(SchemaError::Kind {
                    relation: self.relation.clone(),
                    position,
                    expected: *kind,
                    found: value.kind(),
                });
            }
        }
        Ok(())
    }
}

/// Why a tuple failed schema validation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SchemaError {
    /// The tuple's length does not match the relation's arity.
    Arity {
        /// Relation being checked.
        relation: String,
        /// Declared arity.
        expected: usize,
        /// Length of the offending tuple.
        found: usize,
    },
    /// A column holds a value of the wrong kind.
    Kind {
        /// Relation being checked.
        relation: String,
        /// Zero-based column index.
        position: usize,
        /// Declared column kind.
        expected: ValueKind,
        /// Kind of the offending value.
        found: ValueKind,
    },
}

impl std::fmt::Display for SchemaError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SchemaError::Arity {
                relation,
                expected,
                found,
            } => write!(
                f,
                "relation '{relation}' has arity {expected}, got a tuple of length {found}"
            ),
            SchemaError::Kind {
                relation,
                position,
                expected,
                found,
            } => write!(
                f,
                "relation '{relation}' column {position} expects {expected}, got {found}"
            ),
        }
    }
}

impl std::error::Error for SchemaError {}

/// Why the engine refused to ingest a tuple on the validated path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IngestError {
    /// The relation is not declared anywhere: no rule mentions it, no schema
    /// describes it and no fact was ever stored under it.
    UnknownRelation {
        /// The unrecognized relation name.
        relation: String,
        /// A known relation with a similar name, if one exists.
        suggestion: Option<String>,
    },
    /// The relation is known but the tuple does not match its schema.
    Schema(SchemaError),
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::UnknownRelation {
                relation,
                suggestion,
            } => {
                write!(f, "unknown relation '{relation}'")?;
                if let Some(s) = suggestion {
                    write!(f, "; did you mean '{s}'?")?;
                }
                Ok(())
            }
            IngestError::Schema(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for IngestError {}

impl From<SchemaError> for IngestError {
    fn from(e: SchemaError) -> Self {
        IngestError::Schema(e)
    }
}

/// A set of relation schemas, keyed by relation name.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SchemaSet {
    schemas: BTreeMap<String, TupleSchema>,
}

impl SchemaSet {
    /// Empty set.
    pub fn new() -> Self {
        SchemaSet::default()
    }

    /// Install (or replace) the schema of one relation.
    pub fn insert(&mut self, schema: TupleSchema) {
        self.schemas.insert(schema.relation.clone(), schema);
    }

    /// Schema of a relation, if declared.
    pub fn get(&self, relation: &str) -> Option<&TupleSchema> {
        self.schemas.get(relation)
    }

    /// True if the relation has a schema.
    pub fn contains(&self, relation: &str) -> bool {
        self.schemas.contains_key(relation)
    }

    /// Declared relation names, sorted.
    pub fn names(&self) -> impl Iterator<Item = &str> {
        self.schemas.keys().map(String::as_str)
    }

    /// Number of declared relations.
    pub fn len(&self) -> usize {
        self.schemas.len()
    }

    /// True when no relation is declared.
    pub fn is_empty(&self) -> bool {
        self.schemas.is_empty()
    }

    /// Check a tuple against the relation's schema; relations without a
    /// schema accept everything.
    pub fn check(&self, relation: &str, tuple: &Tuple) -> Result<(), SchemaError> {
        match self.schemas.get(relation) {
            Some(schema) => schema.check(tuple),
            None => Ok(()),
        }
    }

    /// Check a whole batch of tuples against one relation's schema, with a
    /// single name lookup for the batch instead of one per tuple. The bulk
    /// counterpart of [`SchemaSet::check`], used by
    /// [`crate::Engine::try_insert_all`]-style ingest of 10^5+ tuple loads.
    /// Fails on the first offending tuple.
    pub fn check_all<'t>(
        &self,
        relation: &str,
        tuples: impl IntoIterator<Item = &'t Tuple>,
    ) -> Result<(), SchemaError> {
        let Some(schema) = self.schemas.get(relation) else {
            return Ok(());
        };
        for tuple in tuples {
            schema.check(tuple)?;
        }
        Ok(())
    }
}

/// Edit distance with early cutoff, for did-you-mean suggestions.
fn edit_distance(a: &str, b: &str) -> usize {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    let mut prev: Vec<usize> = (0..=b.len()).collect();
    let mut cur = vec![0usize; b.len() + 1];
    for (i, ca) in a.iter().enumerate() {
        cur[0] = i + 1;
        for (j, cb) in b.iter().enumerate() {
            let cost = usize::from(!ca.eq_ignore_ascii_case(cb));
            cur[j + 1] = (prev[j] + cost).min(prev[j + 1] + 1).min(cur[j] + 1);
        }
        std::mem::swap(&mut prev, &mut cur);
    }
    prev[b.len()]
}

/// The candidate most similar to `name`, when the similarity is close
/// enough to plausibly be a typo (edit distance at most 2, and strictly
/// less than the name's length so short names do not match everything).
pub fn did_you_mean<'a>(
    name: &str,
    candidates: impl IntoIterator<Item = &'a str>,
) -> Option<String> {
    let mut best: Option<(usize, &str)> = None;
    for candidate in candidates {
        if candidate == name {
            continue;
        }
        let d = edit_distance(name, candidate);
        let better = match best {
            None => true,
            Some((bd, bc)) => d < bd || (d == bd && candidate < bc),
        };
        if better {
            best = Some((d, candidate));
        }
    }
    let (d, c) = best?;
    (d <= 2 && d < name.chars().count()).then(|| c.to_string())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::{NodeId, Value};

    fn schema() -> TupleSchema {
        TupleSchema::new(
            "assign",
            vec![ValueKind::Addr, ValueKind::Any, ValueKind::Sym],
        )
    }

    #[test]
    fn arity_mismatch_detected() {
        let err = schema()
            .check(&vec![Value::Addr(NodeId(0)), Value::Int(1)])
            .unwrap_err();
        assert_eq!(
            err,
            SchemaError::Arity {
                relation: "assign".into(),
                expected: 3,
                found: 2
            }
        );
        assert!(err.to_string().contains("arity 3"));
    }

    #[test]
    fn kind_mismatch_detected() {
        let err = schema()
            .check(&vec![Value::Int(0), Value::Int(1), Value::Int(1)])
            .unwrap_err();
        assert!(matches!(
            err,
            SchemaError::Kind {
                position: 0,
                expected: ValueKind::Addr,
                ..
            }
        ));
        assert!(err.to_string().contains("column 0"));
    }

    #[test]
    fn sym_columns_admit_materialized_integers() {
        // A solver attribute is symbolic during grounding and an integer
        // after materialization; both must validate.
        let ok = vec![
            Value::Addr(NodeId(1)),
            Value::Str("vm1".into()),
            Value::Int(1),
        ];
        schema().check(&ok).unwrap();
        let sym = vec![
            Value::Addr(NodeId(1)),
            Value::Int(7),
            Value::Sym(crate::value::SymId(0)),
        ];
        schema().check(&sym).unwrap();
    }

    #[test]
    fn schema_set_checks_and_passes_unknown() {
        let mut set = SchemaSet::new();
        set.insert(schema());
        assert!(set.contains("assign"));
        assert_eq!(set.len(), 1);
        assert!(set
            .check("assign", &vec![Value::Int(0), Value::Int(1), Value::Int(1)])
            .is_err());
        // relations without a schema accept everything
        set.check("unconstrained", &vec![Value::Int(1)]).unwrap();
        assert_eq!(set.names().collect::<Vec<_>>(), vec!["assign"]);
    }

    #[test]
    fn did_you_mean_suggests_close_names() {
        let names = ["hostCpu", "hostMem", "assign", "vm"];
        assert_eq!(
            did_you_mean("hostCpi", names.iter().copied()),
            Some("hostCpu".into())
        );
        assert_eq!(
            did_you_mean("hostcpu", names.iter().copied()),
            Some("hostCpu".into())
        );
        assert_eq!(
            did_you_mean("totallyDifferent", names.iter().copied()),
            None
        );
        // short names must not match everything
        assert_eq!(did_you_mean("x", ["vm"].iter().copied()), None);
    }

    #[test]
    fn ingest_error_displays() {
        let e = IngestError::UnknownRelation {
            relation: "vmCpu".into(),
            suggestion: Some("hostCpu".into()),
        };
        let s = e.to_string();
        assert!(s.contains("vmCpu") && s.contains("did you mean 'hostCpu'"));
        let e = IngestError::from(SchemaError::Arity {
            relation: "vm".into(),
            expected: 3,
            found: 1,
        });
        assert!(e.to_string().contains("arity"));
    }
}
