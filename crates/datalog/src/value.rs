//! Runtime values stored in Datalog tuples.
//!
//! Colog attributes are integers, strings, addresses (node identifiers used
//! by the `@Loc` location specifier), booleans and floating-point
//! measurements (e.g. CPU utilisation sampled from the data-center trace).
//! Solver attributes — whose values are only determined by the constraint
//! solver (Sec. 4.2 of the paper) — are carried through rule evaluation as
//! symbolic references ([`Value::Sym`]) into the runtime's expression store.

use std::fmt;
use std::hash::{Hash, Hasher};

/// Identifier of a node (a Cologne instance) in the distributed deployment.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of a symbolic solver expression held by the Cologne runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SymId(pub u32);

/// Interned identifier of a relation name.
///
/// The engine keys its relation stores, rule triggers and compiled plans by
/// `RelId` instead of `String`-keyed hash maps; the id ↔ name mapping lives
/// in the engine's interner and is resolved only at the public API boundary
/// (ingest, `tuples`, the outbox).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RelId(pub u32);

/// Interned identifier of a [`Value::Str`] payload.
///
/// Inside the engine, string attribute values are represented by `StrId`s so
/// stored rows are flat arrays of copyable words and join-key comparisons
/// never touch string data. Ids are engine-local: tuples crossing the wire
/// carry the real string and are re-interned by the receiving engine, so two
/// nodes agree on *content* even when their id assignments differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StrId(pub u32);

/// A totally-ordered, hashable wrapper around `f64`.
///
/// Datalog tables must support equality and hashing; IEEE floats do not, so
/// measurements are wrapped. NaN is not a meaningful measurement value and is
/// normalised to a single bit pattern.
#[derive(Debug, Clone, Copy)]
pub struct F64(pub f64);

impl F64 {
    /// The canonical IEEE-754 bits used for equality, hashing and the wire
    /// encoding (`crate::serde`): every NaN normalizes to the same payload
    /// and `-0.0` encodes as `+0.0`, so a value that round-trips through
    /// bytes compares equal to the original.
    pub fn to_wire_bits(self) -> u64 {
        self.canonical_bits()
    }

    pub(crate) fn canonical_bits(self) -> u64 {
        if self.0.is_nan() {
            f64::NAN.to_bits()
        } else if self.0 == 0.0 {
            0u64 // +0.0 and -0.0 compare equal
        } else {
            self.0.to_bits()
        }
    }
}

impl PartialEq for F64 {
    fn eq(&self, other: &Self) -> bool {
        self.canonical_bits() == other.canonical_bits()
    }
}
impl Eq for F64 {}

impl Hash for F64 {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.canonical_bits().hash(state);
    }
}

impl PartialOrd for F64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for F64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.total_cmp(&other.0)
    }
}

/// The kind of a [`Value`] — the unit of per-column schema checking.
///
/// Schemas derived from a Colog program ([`crate::SchemaSet`]) use `Addr`
/// for location-specifier columns, `Sym` for solver-attribute columns and
/// `Any` everywhere else; the remaining kinds exist so hand-built schemas
/// can pin concrete column types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum ValueKind {
    /// Any value is admitted.
    Any,
    /// Signed integer (booleans are admitted too: they evaluate as 0/1).
    Int,
    /// Floating-point measurement (integers are admitted: they widen).
    Float,
    /// String constant.
    Str,
    /// Node address — the value of a `@Loc` location-specifier column.
    Addr,
    /// Boolean (integers are admitted: non-zero is true).
    Bool,
    /// Solver attribute: symbolic during grounding ([`Value::Sym`]),
    /// concrete integer after materialization — both are admitted.
    Sym,
}

impl ValueKind {
    /// True when `value` is acceptable in a column of this kind.
    pub fn admits(&self, value: &Value) -> bool {
        match self {
            ValueKind::Any => true,
            ValueKind::Int => matches!(value, Value::Int(_) | Value::Bool(_)),
            ValueKind::Float => matches!(value, Value::Float(_) | Value::Int(_)),
            ValueKind::Str => matches!(value, Value::Str(_)),
            ValueKind::Addr => matches!(value, Value::Addr(_)),
            ValueKind::Bool => matches!(value, Value::Bool(_) | Value::Int(_)),
            ValueKind::Sym => matches!(value, Value::Sym(_) | Value::Int(_) | Value::Bool(_)),
        }
    }
}

impl fmt::Display for ValueKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            ValueKind::Any => "any",
            ValueKind::Int => "int",
            ValueKind::Float => "float",
            ValueKind::Str => "str",
            ValueKind::Addr => "addr",
            ValueKind::Bool => "bool",
            ValueKind::Sym => "solver",
        };
        write!(f, "{name}")
    }
}

/// A Datalog attribute value.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Value {
    /// Signed integer.
    Int(i64),
    /// Floating-point measurement.
    Float(F64),
    /// String constant.
    Str(String),
    /// Node address (the value of a location-specifier attribute).
    Addr(NodeId),
    /// Boolean.
    Bool(bool),
    /// Reference to a symbolic solver expression (a solver attribute whose
    /// concrete value is produced by the constraint solver).
    Sym(SymId),
}

impl Value {
    /// Build a float value.
    pub fn float(v: f64) -> Value {
        Value::Float(F64(v))
    }

    /// Integer view, if this is an `Int` or an exactly-integral `Float`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            Value::Bool(b) => Some(i64::from(*b)),
            Value::Float(F64(f)) if f.fract() == 0.0 => Some(*f as i64),
            _ => None,
        }
    }

    /// Numeric view as `f64`, if numeric.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Int(i) => Some(*i as f64),
            Value::Float(F64(f)) => Some(*f),
            Value::Bool(b) => Some(f64::from(u8::from(*b))),
            _ => None,
        }
    }

    /// Boolean view.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            Value::Int(i) => Some(*i != 0),
            _ => None,
        }
    }

    /// Address view.
    pub fn as_addr(&self) -> Option<NodeId> {
        match self {
            Value::Addr(n) => Some(*n),
            _ => None,
        }
    }

    /// Symbolic-expression view.
    pub fn as_sym(&self) -> Option<SymId> {
        match self {
            Value::Sym(s) => Some(*s),
            _ => None,
        }
    }

    /// True if this value refers to a solver expression.
    pub fn is_symbolic(&self) -> bool {
        matches!(self, Value::Sym(_))
    }

    /// The kind of this value (used in schema-mismatch diagnostics).
    pub fn kind(&self) -> ValueKind {
        match self {
            Value::Int(_) => ValueKind::Int,
            Value::Float(_) => ValueKind::Float,
            Value::Str(_) => ValueKind::Str,
            Value::Addr(_) => ValueKind::Addr,
            Value::Bool(_) => ValueKind::Bool,
            Value::Sym(_) => ValueKind::Sym,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(F64(x)) => write!(f, "{x}"),
            Value::Str(s) => write!(f, "\"{s}\""),
            Value::Addr(n) => write!(f, "@{n}"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Sym(s) => write!(f, "$sym{}", s.0),
        }
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}
impl From<i32> for Value {
    fn from(v: i32) -> Self {
        Value::Int(v as i64)
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::float(v)
    }
}
impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}
impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}
impl From<NodeId> for Value {
    fn from(v: NodeId) -> Self {
        Value::Addr(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn float_equality_and_hashing() {
        let mut set = HashSet::new();
        set.insert(Value::float(1.5));
        set.insert(Value::float(1.5));
        set.insert(Value::float(-0.0));
        set.insert(Value::float(0.0));
        assert_eq!(set.len(), 2);
    }

    #[test]
    fn nan_is_normalised() {
        assert_eq!(Value::float(f64::NAN), Value::float(-f64::NAN));
    }

    #[test]
    fn numeric_views() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::float(7.0).as_int(), Some(7));
        assert_eq!(Value::float(7.5).as_int(), None);
        assert_eq!(Value::Int(7).as_f64(), Some(7.0));
        assert_eq!(Value::Bool(true).as_int(), Some(1));
        assert_eq!(Value::Str("x".into()).as_int(), None);
    }

    #[test]
    fn address_and_sym_views() {
        let v = Value::Addr(NodeId(3));
        assert_eq!(v.as_addr(), Some(NodeId(3)));
        assert_eq!(Value::Int(3).as_addr(), None);
        let s = Value::Sym(SymId(9));
        assert!(s.is_symbolic());
        assert_eq!(s.as_sym(), Some(SymId(9)));
    }

    #[test]
    fn conversions_and_display() {
        assert_eq!(Value::from(5i64), Value::Int(5));
        assert_eq!(Value::from("hi"), Value::Str("hi".into()));
        assert_eq!(Value::from(NodeId(1)).to_string(), "@n1");
        assert_eq!(Value::from(true).as_bool(), Some(true));
        assert_eq!(Value::Int(0).as_bool(), Some(false));
        assert_eq!(Value::Sym(SymId(2)).to_string(), "$sym2");
    }

    #[test]
    fn ordering_is_total() {
        let mut values = vec![Value::Int(3), Value::Int(1), Value::Int(2)];
        values.sort();
        assert_eq!(values, vec![Value::Int(1), Value::Int(2), Value::Int(3)]);
    }
}
