//! Quickstart: write a Colog constraint-optimization policy, feed it system
//! state, invoke the solver, and read back the optimized configuration.
//!
//! This is the centralized ACloud load-balancing program of Sec. 4.2 of the
//! paper, run on a hand-written five-VM / three-host snapshot.
//!
//! ```text
//! cargo run -p cologne-bench --example quickstart
//! ```

use cologne::datalog::{NodeId, Value};
use cologne::{CologneInstance, ProgramParams, VarDomain};

const PROGRAM: &str = r#"
    goal minimize C in hostStdevCpu(C).
    var assign(Vid,Hid,V) forall toAssign(Vid,Hid).

    r1 toAssign(Vid,Hid) <- vm(Vid,Cpu,Mem), host(Hid,Cpu2,Mem2).
    d1 hostCpu(Hid,SUM<C>) <- assign(Vid,Hid,V), vm(Vid,Cpu,Mem), C==V*Cpu.
    d2 hostStdevCpu(STDEV<C>) <- host(Hid,Cpu,Mem), hostCpu(Hid,Cpu2), C==Cpu+Cpu2.
    d3 assignCount(Vid,SUM<V>) <- assign(Vid,Hid,V).
    c1 assignCount(Vid,V) -> V==1.
    d4 hostMem(Hid,SUM<M>) <- assign(Vid,Hid,V), vm(Vid,Cpu,Mem), M==V*Mem.
    c2 hostMem(Hid,Mem) -> hostMemThres(Hid,M), Mem<=M.
"#;

fn main() {
    // 1. Compile the policy. The assignment variables are 0/1.
    let params = ProgramParams::new().with_var_domain("assign", VarDomain::BOOL);
    let mut node = CologneInstance::new(NodeId(0), PROGRAM, params).expect("program compiles");

    // 2. Feed the monitored system state: five VMs with their CPU (%) and
    //    memory (GB), three hosts with 16 GB of memory each.
    let vms = [(1, 42, 2), (2, 35, 4), (3, 18, 2), (4, 55, 4), (5, 27, 2)];
    for (vid, cpu, mem) in vms {
        node.insert_fact(
            "vm",
            vec![Value::Int(vid), Value::Int(cpu), Value::Int(mem)],
        );
    }
    for hid in [100, 101, 102] {
        node.insert_fact("host", vec![Value::Int(hid), Value::Int(0), Value::Int(0)]);
        node.insert_fact("hostMemThres", vec![Value::Int(hid), Value::Int(16)]);
    }

    // 3. Invoke the solver (the paper's `invokeSolver` event).
    let report = node.invoke_solver().expect("solver runs");
    assert!(report.feasible, "the placement problem must be feasible");

    // 4. Read back the optimized VM placement.
    println!("optimal VM placement (CPU-balanced across hosts):");
    let mut per_host: std::collections::BTreeMap<i64, Vec<i64>> = Default::default();
    for row in report.table("assign") {
        let (vid, hid, assigned) = (
            row[0].as_int().unwrap(),
            row[1].as_int().unwrap(),
            row[2].as_int().unwrap(),
        );
        if assigned == 1 {
            per_host.entry(hid).or_default().push(vid);
        }
    }
    for (hid, vm_list) in &per_host {
        let load: i64 = vm_list
            .iter()
            .map(|v| vms.iter().find(|(vid, _, _)| vid == v).unwrap().1)
            .sum();
        println!("  host {hid}: VMs {vm_list:?}  total CPU {load}%");
    }
    println!(
        "solver explored {} nodes in {:?} (proven optimal: {})",
        report.stats.nodes,
        report.stats.elapsed(),
        report.proven_optimal
    );
    // Per-invocation solver effort is also retained on the instance itself.
    let effort = node.last_solver_stats().expect("solver was invoked");
    println!("solver effort: {effort}");
}
