//! Quickstart: write a Colog constraint-optimization policy, feed it system
//! state through schema-checked relation handles, invoke the solver with a
//! streaming observer, and read back the optimized configuration.
//!
//! This is the centralized ACloud load-balancing program of Sec. 4.2 of the
//! paper, run on a hand-written five-VM / three-host snapshot through the
//! typed public API: [`cologne::DeploymentBuilder`] to stand the system up,
//! [`cologne::RelationHandle`] for validated writes, and a
//! [`cologne::SolveRequest`] with buffered events to watch the incumbent
//! stream while the solver runs.
//!
//! ```text
//! cargo run -p cologne-bench --example quickstart
//! ```

use cologne::datalog::Value;
use cologne::{DeploymentBuilder, ProgramParams, SolveEvent, SolveRequest, VarDomain};

const PROGRAM: &str = r#"
    goal minimize C in hostStdevCpu(C).
    var assign(Vid,Hid,V) forall toAssign(Vid,Hid).

    r1 toAssign(Vid,Hid) <- vm(Vid,Cpu,Mem), host(Hid,Cpu2,Mem2).
    d1 hostCpu(Hid,SUM<C>) <- assign(Vid,Hid,V), vm(Vid,Cpu,Mem), C==V*Cpu.
    d2 hostStdevCpu(STDEV<C>) <- host(Hid,Cpu,Mem), hostCpu(Hid,Cpu2), C==Cpu+Cpu2.
    d3 assignCount(Vid,SUM<V>) <- assign(Vid,Hid,V).
    c1 assignCount(Vid,V) -> V==1.
    d4 hostMem(Hid,SUM<M>) <- assign(Vid,Hid,V), vm(Vid,Cpu,Mem), M==V*Mem.
    c2 hostMem(Hid,Mem) -> hostMemThres(Hid,M), Mem<=M.
"#;

fn main() {
    // 1. Compile the policy into a (single-node) deployment. The assignment
    //    variables are 0/1.
    let mut node = DeploymentBuilder::new(PROGRAM)
        .params(ProgramParams::new().with_var_domain("assign", VarDomain::BOOL))
        .build()
        .expect("program compiles");
    let target = node.single_node().expect("single-node deployment");

    // 2. Feed the monitored system state through schema-checked handles:
    //    five VMs with their CPU (%) and memory (GB), three hosts with 16 GB
    //    of memory each. A typo'd relation name or a malformed tuple errors
    //    here, eagerly — it cannot silently miss every rule.
    let vms = [(1, 42, 2), (2, 35, 4), (3, 18, 2), (4, 55, 4), (5, 27, 2)];
    let mut vm = node.relation("vm").expect("vm is in the program");
    for (vid, cpu, mem) in vms {
        vm.insert(vec![Value::Int(vid), Value::Int(cpu), Value::Int(mem)])
            .expect("vm row matches the schema");
    }
    for hid in [100, 101, 102] {
        node.relation("host")
            .expect("host is in the program")
            .insert(vec![Value::Int(hid), Value::Int(0), Value::Int(0)])
            .expect("host row matches the schema");
        node.relation("hostMemThres")
            .expect("hostMemThres is in the program")
            .insert(vec![Value::Int(hid), Value::Int(16)])
            .expect("hostMemThres row matches the schema");
    }
    let typo = node.relation("vmm").expect_err("typos are caught eagerly");
    println!("schema catalog in action: {typo}");

    // 3. Invoke the solver (the paper's `invokeSolver` event) through the
    //    typed solve entry point, with buffered events: every improving
    //    incumbent streams into the response as the search runs instead of
    //    arriving all-or-nothing at the end. The same request drives remote
    //    solves through `cologne-serve`.
    let response = node
        .solve(&SolveRequest::at(target).with_events(1024))
        .expect("solver runs");
    let report = response.report(target).expect("report for the target node");
    assert!(report.feasible, "the placement problem must be feasible");

    println!("\nincumbent stream (objective = scaled CPU variance):");
    let mut n = 0u32;
    for (_, event) in &response.events {
        if let SolveEvent::Incumbent { objective } = event {
            n += 1;
            println!("  on_incumbent #{n}: objective={}", objective.unwrap_or(0));
        }
    }

    // 4. Read back the optimized VM placement.
    println!("\noptimal VM placement (CPU-balanced across hosts):");
    let mut per_host: std::collections::BTreeMap<i64, Vec<i64>> = Default::default();
    for row in report.table("assign") {
        let (vid, hid, assigned) = (
            row[0].as_int().unwrap(),
            row[1].as_int().unwrap(),
            row[2].as_int().unwrap(),
        );
        if assigned == 1 {
            per_host.entry(hid).or_default().push(vid);
        }
    }
    for (hid, vm_list) in &per_host {
        let load: i64 = vm_list
            .iter()
            .map(|v| vms.iter().find(|(vid, _, _)| vid == v).unwrap().1)
            .sum();
        println!("  host {hid}: VMs {vm_list:?}  total CPU {load}%");
    }
    println!(
        "solver explored {} nodes in {:?} (proven optimal: {})",
        report.stats.nodes,
        report.stats.elapsed(),
        report.proven_optimal
    );
    // Per-invocation solver effort is also retained on the instance itself.
    let effort = node
        .instance(target)
        .and_then(|i| i.last_solver_stats())
        .expect("solver was invoked");
    println!("solver effort: {effort}");
}
