//! Follow-the-Sun scenario: distributed inter-data-center VM migration
//! (Sec. 4.3 / 6.3). Five data centers negotiate pairwise migrations; the
//! example prints the cost trajectory and the communication overhead of the
//! distributed execution.
//!
//! ```text
//! cargo run --release -p cologne-bench --example followsun_migration
//! ```

use cologne_usecases::{run_followsun, FollowSunConfig};

fn main() {
    let config = FollowSunConfig {
        data_centers: 5,
        solver_node_limit: 30_000,
        ..FollowSunConfig::default()
    };
    println!(
        "Follow-the-Sun: {} data centers, capacity {} VM units each, degree ~{}",
        config.data_centers, config.capacity, config.degree
    );

    let outcome = run_followsun(&config);
    println!("\nnormalized total cost while the distributed execution converges:");
    println!("{:>10} {:>16}", "time (s)", "total cost (%)");
    for point in &outcome.cost_series {
        println!("{:>10.1} {:>16.1}", point.time_secs, point.normalized_cost);
    }
    println!(
        "\ncost reduced by {:.1}% ({} -> {}) after migrating {} VM units",
        100.0 * outcome.cost_reduction(),
        outcome.initial_cost,
        outcome.final_cost,
        outcome.migrated_vms
    );
    println!(
        "convergence time {:.0} s, per-node communication overhead {:.2} KB/s",
        outcome.convergence_secs, outcome.per_node_overhead_kbps
    );
    println!(
        "solver effort across {} COP invocations: {}",
        outcome.solver_invocations, outcome.solver_stats
    );
}
