//! ACloud scenario: run the trace-driven load-balancing experiment of
//! Sec. 6.2 at a reduced scale and compare the four policies (Default,
//! Heuristic, ACloud, ACloud (M)).
//!
//! ```text
//! cargo run --release -p cologne-bench --example acloud_load_balancing
//! ```

use cologne_usecases::{run_acloud_experiment, AcloudConfig, AcloudPolicy};

fn main() {
    let config = AcloudConfig {
        data_centers: 2,
        hosts_per_dc: 4,
        vms_per_host: 20,
        customers: 40,
        duration_hours: 1.0,
        solver_node_limit: 30_000,
        ..AcloudConfig::default()
    };
    println!(
        "ACloud experiment: {} data centers, {} hosts each, {} VMs total, {} intervals",
        config.data_centers,
        config.hosts_per_dc,
        config.total_vms(),
        config.intervals()
    );

    let results = run_acloud_experiment(&config);
    println!(
        "\n{:<10} {:>12} {:>12} {:>12} {:>12}",
        "time (h)", "Default", "Heuristic", "ACloud", "ACloud (M)"
    );
    for interval in &results.intervals {
        println!(
            "{:<10.2} {:>12.1} {:>12.1} {:>12.1} {:>12.1}",
            interval.time_hours,
            interval.cpu_stdev[&AcloudPolicy::Default],
            interval.cpu_stdev[&AcloudPolicy::Heuristic],
            interval.cpu_stdev[&AcloudPolicy::ACloud],
            interval.cpu_stdev[&AcloudPolicy::ACloudM],
        );
    }

    println!("\nsummary (average CPU standard deviation, %):");
    for policy in AcloudPolicy::all() {
        println!(
            "  {:<12} stdev {:>7.2}   migrations/interval {:>5.1}",
            policy.name(),
            results.mean_stdev(policy),
            results.mean_migrations(policy)
        );
    }
    println!(
        "\nACloud reduces load imbalance by {:.1}% vs Default",
        100.0 * results.imbalance_reduction(AcloudPolicy::ACloud, AcloudPolicy::Default)
    );
}
