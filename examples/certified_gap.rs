//! Certified optimality gaps on the large ACloud instance (120 VMs, 10
//! heterogeneous hosts) solved with LNS.
//!
//! With a bound mode enabled the solver computes a sound dual bound at the
//! frozen root, streams the live optimality gap through the observer's
//! progress heartbeat, and attaches a [`cologne::BoundCertificate`] naming
//! the binding constraints to the final report. A second, small exact run
//! shows gap-driven termination: `gap_limit = 0.05` stops the search as
//! soon as the incumbent is certified within 5% of optimal, skipping the
//! expensive tail of the optimality proof.
//!
//! Run with: `cargo run --release --example certified_gap`

use cologne::datalog::{NodeId, Value};
use cologne::{
    CologneInstance, EventLog, ProgramParams, SolveEvent, SolverBoundMode, SolverBranching,
    SolverMode, VarDomain,
};
use cologne_usecases::programs::ACLOUD_CENTRALIZED;
use cologne_usecases::{large_acloud_instance, LargeAcloudConfig};

fn main() {
    // --- Live gap stream on the large LNS scenario ---------------------
    let config = LargeAcloudConfig::default();
    println!(
        "large ACloud: {} VMs x {} hosts, node budget {}, bound mode Auto",
        config.vms, config.hosts, config.node_limit
    );
    let mut instance = large_acloud_instance(&config, SolverMode::Lns(config.lns_params()));
    instance.params_mut().solver_bound_mode = SolverBoundMode::Auto;

    let mut log = EventLog::bounded(65536);
    let report = instance
        .invoke_solver_with_observer(&mut log)
        .expect("LNS solve runs");

    // Every progress heartbeat carries the live dual bound and gap.
    let mut streamed = 0usize;
    for event in log.drain() {
        if let SolveEvent::Progress {
            nodes,
            dual_bound: Some(dual),
            gap: Some(gap),
            ..
        } = event
        {
            streamed += 1;
            if streamed <= 5 {
                println!(
                    "  progress: nodes={nodes} dual={dual} gap={:.1}%",
                    gap * 100.0
                );
            }
        }
    }
    println!("streamed {streamed} progress heartbeats with a live gap");
    println!(
        "lns: objective={:?} gap={:?} [{}]",
        report.objective, report.stats.gap, report.stats
    );
    let cert = report
        .certificate
        .as_ref()
        .expect("a bound mode is on: the report carries a certificate");
    println!("certificate: {cert}");

    // --- Gap-driven termination on an exact search ---------------------
    let nodes_of = |gap_limit: Option<f64>| {
        let params = ProgramParams::new()
            .with_var_domain("assign", VarDomain::BOOL)
            .with_solver_branching(SolverBranching::FirstFail)
            .with_solver_max_time(None)
            .with_solver_node_limit(Some(200_000))
            .with_solver_bound_mode(if gap_limit.is_some() {
                SolverBoundMode::Auto
            } else {
                SolverBoundMode::Off
            })
            .with_solver_gap_limit(gap_limit);
        let mut inst =
            CologneInstance::new(NodeId(0), ACLOUD_CENTRALIZED, params).expect("compiles");
        for (vid, cpu) in [40i64, 20, 30, 25, 35, 15, 45, 10, 50, 5, 55, 60]
            .into_iter()
            .enumerate()
        {
            inst.relation("vm")
                .unwrap()
                .insert(vec![
                    Value::Int(vid as i64 + 1),
                    Value::Int(cpu),
                    Value::Int(2),
                ])
                .unwrap();
        }
        for hid in [10i64, 11, 12] {
            inst.relation("host")
                .unwrap()
                .insert(vec![Value::Int(hid), Value::Int(0), Value::Int(0)])
                .unwrap();
            inst.relation("hostMemThres")
                .unwrap()
                .insert(vec![Value::Int(hid), Value::Int(32)])
                .unwrap();
        }
        inst.invoke_solver().expect("solve runs")
    };
    let full = nodes_of(None);
    let gapped = nodes_of(Some(0.05));
    println!(
        "exact 12-VM search (200k-node budget): objective={:?} nodes={}",
        full.objective, full.stats.nodes
    );
    println!(
        "exact gap_limit 5%: objective={:?} nodes={} gap={:?} ({})",
        gapped.objective,
        gapped.stats.nodes,
        gapped.stats.gap,
        gapped
            .certificate
            .as_ref()
            .expect("gap-terminated run is certified")
    );
    assert!(gapped.stats.nodes < full.stats.nodes);
    println!(
        "gap termination searched {:.1}% of the full proof's nodes",
        100.0 * gapped.stats.nodes as f64 / full.stats.nodes as f64
    );
}
