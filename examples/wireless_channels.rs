//! Wireless mesh scenario: declarative channel selection (Appendix A /
//! Sec. 6.4). A 4x4 mesh picks channels with the centralized and distributed
//! Colog programs; the example prints the resulting assignments and the
//! aggregate throughput each achieves against the naive baselines.
//!
//! ```text
//! cargo run --release -p cologne-bench --example wireless_channels
//! ```

use cologne_usecases::wireless::{aggregate_throughput, assignment_for, MeshNetwork};
use cologne_usecases::{WirelessConfig, WirelessProtocol};

fn main() {
    let config = WirelessConfig {
        rows: 4,
        cols: 4,
        flows: 8,
        solver_node_limit: 15_000,
        ..WirelessConfig::default()
    };
    let mesh = MeshNetwork::generate(&config);
    println!(
        "mesh: {} nodes, {} links, {} channels, {} primary-user restrictions, {} flows",
        config.nodes(),
        mesh.links().len(),
        config.channels.len(),
        mesh.primary_users.len(),
        mesh.flows.len()
    );

    let offered = 8.0;
    println!(
        "\nper-protocol channel assignment and throughput at {offered} Mbps offered per flow:"
    );
    for protocol in WirelessProtocol::all() {
        let assignment = assignment_for(&mesh, protocol);
        let distinct: std::collections::BTreeSet<i64> = assignment.values().copied().collect();
        let throughput = aggregate_throughput(
            &mesh,
            &assignment,
            offered,
            protocol == WirelessProtocol::CrossLayer,
        );
        println!(
            "  {:<14} channels used {:?}  aggregate throughput {:>6.2} Mbps",
            protocol.name(),
            distinct,
            throughput
        );
    }

    // Show one concrete assignment in detail.
    let distributed = assignment_for(&mesh, WirelessProtocol::Distributed);
    println!("\ndistributed per-link channels:");
    for ((a, b), ch) in distributed.iter() {
        println!("  link {a:>2} -- {b:<2}  channel {ch}");
    }
}
