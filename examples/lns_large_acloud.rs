//! Exact branch-and-bound vs large neighborhood search on the large ACloud
//! instance (120 VMs, 10 heterogeneous hosts) under the *same* node budget.
//!
//! Exact search exhausts the budget deep in the first corner of the tree;
//! LNS spends the same nodes on destroy/repair passes around its incumbent
//! and lands a far more balanced placement. Both runs are deterministic (the
//! wall-clock limit is disabled; the LNS seed is fixed by the scenario).
//!
//! Run with: `cargo run --release --example lns_large_acloud`

use cologne::SolverMode;
use cologne_usecases::{solve_large_acloud, LargeAcloudConfig};

fn main() {
    let config = LargeAcloudConfig::default();
    println!(
        "large ACloud: {} VMs x {} hosts, node budget {}",
        config.vms, config.hosts, config.node_limit
    );

    let exact = solve_large_acloud(&config, SolverMode::Exact);
    println!(
        "exact : objective={:?} proven_optimal={} [{}]",
        exact.objective, exact.proven_optimal, exact.stats
    );

    let lns = solve_large_acloud(&config, SolverMode::Lns(config.lns_params()));
    println!(
        "lns   : objective={:?} proven_optimal={} [{}]",
        lns.objective, lns.proven_optimal, lns.stats
    );

    let (e, l) = (
        exact.objective.expect("exact finds an incumbent"),
        lns.objective.expect("LNS finds an incumbent"),
    );
    println!(
        "LNS improved the (scaled-variance) objective by {:.1}% over exact at equal budget",
        100.0 * (e - l) as f64 / e as f64
    );
}
