//! Exact branch-and-bound vs large neighborhood search on the large ACloud
//! instance (120 VMs, 10 heterogeneous hosts) under the *same* node budget.
//!
//! Exact search exhausts the budget deep in the first corner of the tree;
//! LNS spends the same nodes on destroy/repair passes around its incumbent
//! and lands a far more balanced placement. Both runs are deterministic (the
//! wall-clock limit is disabled; the LNS seed is fixed by the scenario).
//!
//! Run with: `cargo run --release --example lns_large_acloud`

use cologne::{EventLog, SolveEvent, SolverMode};
use cologne_usecases::{large_acloud_instance, solve_large_acloud, LargeAcloudConfig};

fn main() {
    let config = LargeAcloudConfig::default();
    println!(
        "large ACloud: {} VMs x {} hosts, node budget {}",
        config.vms, config.hosts, config.node_limit
    );

    let exact = solve_large_acloud(&config, SolverMode::Exact);
    println!(
        "exact : objective={:?} proven_optimal={} [{}]",
        exact.objective, exact.proven_optimal, exact.stats
    );

    // The LNS run streams its progress: every improving incumbent and every
    // destroy/repair iteration is observable while the search runs.
    let mut instance = large_acloud_instance(&config, SolverMode::Lns(config.lns_params()));
    let mut log = EventLog::bounded(65536);
    let lns = instance
        .invoke_solver_with_observer(&mut log)
        .expect("LNS solve runs");
    println!(
        "lns   : objective={:?} proven_optimal={} [{}]",
        lns.objective, lns.proven_optimal, lns.stats
    );
    let events = log.drain();
    let incumbents: Vec<i64> = events
        .iter()
        .filter_map(|e| match e {
            SolveEvent::Incumbent { objective } => *objective,
            _ => None,
        })
        .collect();
    let iterations = events
        .iter()
        .filter(|e| matches!(e, SolveEvent::LnsIteration { .. }))
        .count();
    println!(
        "lns incumbent stream ({} improvements over {} iterations): {:?}",
        incumbents.len(),
        iterations,
        incumbents
    );

    let (e, l) = (
        exact.objective.expect("exact finds an incumbent"),
        lns.objective.expect("LNS finds an incumbent"),
    );
    println!(
        "LNS improved the (scaled-variance) objective by {:.1}% over exact at equal budget",
        100.0 * (e - l) as f64 / e as f64
    );
}
