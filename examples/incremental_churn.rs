//! Incremental re-optimization demo: the ACloud churn scenario (per-tick VM
//! arrivals/departures + host-capacity drift, driven through the net
//! simulator) solved twice — once with delta-aware grounding + warm-started
//! solving at a third of the node budget, once cold at the full budget.
//!
//! The warm path re-solves each tick starting from the previous tick's
//! incumbent (like a continuous LNS run that absorbs deltas), so it reaches
//! equal-or-better placements while exploring a fraction of the nodes — the
//! re-solve latency gap `bench_incremental` measures.

use std::time::Instant;

use cologne::{LnsParams, SolverMode};
use cologne_usecases::{run_churn, ChurnConfig};

fn config(incremental: bool, budget: u64) -> ChurnConfig {
    ChurnConfig {
        data_centers: 1,
        hosts_per_dc: 6,
        initial_vms_per_dc: 40,
        ticks: 8,
        arrivals_per_tick: 1,
        departures_per_tick: 1,
        capacity_drift_gb: 2,
        solver_node_limit: Some(budget),
        solver_mode: SolverMode::Lns(LnsParams {
            dive_node_limit: (budget / 8).max(500),
            ..Default::default()
        }),
        incremental,
        ..ChurnConfig::default()
    }
}

fn main() {
    let t0 = Instant::now();
    let warm = run_churn(&config(true, 8_000));
    let warm_elapsed = t0.elapsed();

    let t0 = Instant::now();
    let cold = run_churn(&config(false, 24_000));
    let cold_elapsed = t0.elapsed();

    println!("ACloud churn, 40 hot VMs on 6 hosts, 8 ticks of single-VM churn + capacity drift");
    println!();
    println!(
        "{:<26} {:>14} {:>12} {:>12}",
        "mode", "search nodes", "groundings", "wall time"
    );
    println!(
        "{:<26} {:>14} {:>8} inc {:>12.3?}",
        "incremental (budget 8k)", warm.total_search_nodes, warm.incremental_builds, warm_elapsed
    );
    println!(
        "{:<26} {:>14} {:>7} full {:>12.3?}",
        "cold (budget 24k)", cold.total_search_nodes, cold.full_rebuilds, cold_elapsed
    );
    println!();
    println!(
        "{:>6} {:>16} {:>16}",
        "tick", "warm objective", "cold objective"
    );
    let mut warm_wins = 0;
    for (w, c) in warm.ticks.iter().zip(cold.ticks.iter()) {
        let better = w.objective.unwrap_or(i64::MAX) <= c.objective.unwrap_or(i64::MAX);
        warm_wins += u32::from(better);
        println!(
            "{:>6} {:>16} {:>16}{}",
            w.tick,
            w.objective.unwrap_or(-1),
            c.objective.unwrap_or(-1),
            if better { "" } else { "  (cold better)" }
        );
    }
    println!();
    println!(
        "warm path: {:.2}x faster, equal-or-better placement on {}/{} ticks",
        cold_elapsed.as_secs_f64() / warm_elapsed.as_secs_f64().max(1e-9),
        warm_wins,
        warm.ticks.len()
    );
}
