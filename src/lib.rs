//! # cologne-repro
//!
//! Workspace facade for the Cologne reproduction (Liu et al., PVLDB 2012).
//!
//! This crate exists to anchor the repository-level `tests/` and `examples/`
//! directories as cargo targets; the implementation lives in the member
//! crates:
//!
//! * [`cologne`] — the runtime (instances, grounding pipeline, distribution);
//! * `cologne-colog` — the Colog compiler front-end;
//! * `cologne-datalog` — the incremental Datalog engine;
//! * `cologne-solver` — the finite-domain constraint solver;
//! * `cologne-net` — the discrete-event network simulator;
//! * `cologne-usecases` — the paper's three evaluation use cases;
//! * `cologne-bench` — experiment harnesses and benchmarks.

pub use cologne;
