#!/usr/bin/env bash
# Deny-list guard for the typed relation API: no *new* `pub fn` may take a
# raw `&str` relation name outside the audited set below. The audited set is
# (a) the validated lookup/read entry points whose whole job is to turn a
# name into a checked handle or iterator, and (b) the datalog engine's own
# ingestion layer. (The deprecated legacy shims kept for one release after
# the API redesign have since been removed.)
#
# The scan is multiline-aware (rustfmt-wrapped signatures are folded before
# matching) and keys on the `relation: &str` parameter-name convention every
# relation-name-taking function in this workspace follows.
#
# If this check fails, either route the new function through
# `RelationHandle` / `SchemaCatalog`, or — if it genuinely belongs in the
# audited set — add it to ci/public_api_allowlist.txt with a reviewer's
# blessing.
set -euo pipefail
cd "$(dirname "$0")/.."

found=$(mktemp)
python3 - <<'EOF' > "$found"
import pathlib, re

sig = re.compile(r"pub fn (\w+)\s*\(([^()]*)\)")
hits = set()
for root in ("crates", "src"):
    for path in sorted(pathlib.Path(root).rglob("*.rs")):
        if "vendor" in path.parts or "target" in path.parts:
            continue
        text = path.read_text()
        # strip line comments, then fold whitespace so wrapped signatures
        # match as a single line
        text = re.sub(r"//[^\n]*", "", text)
        text = re.sub(r"\s+", " ", text)
        for name, params in sig.findall(text):
            if re.search(r"relation: &\s*str", params):
                hits.add(f"{path}: pub fn {name}")
for hit in sorted(hits):
    print(hit)
EOF

echo "--- pub fns taking a raw relation name ---"
cat "$found"
echo "-------------------------------------------"

if ! diff -u ci/public_api_allowlist.txt "$found"; then
  echo
  echo "ERROR: the set of pub fns taking a raw '&str' relation name changed." >&2
  echo "New stringly-typed entry points are not allowed outside the shim" >&2
  echo "modules; see ci/check_public_api.sh for what to do." >&2
  exit 1
fi
echo "public-api deny-list check passed"
