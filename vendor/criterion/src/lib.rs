//! Minimal, dependency-free stand-in for the `criterion` benchmark harness.
//!
//! This workspace builds fully offline, so the real `criterion` cannot be
//! downloaded. The benches under `crates/bench/benches/` use a small API
//! slice — `Criterion::default().sample_size(..)`, `benchmark_group`,
//! `bench_function`, `bench_with_input`, `BenchmarkId`, `Bencher::iter` and
//! the `criterion_group!`/`criterion_main!` macros — and this crate
//! implements exactly that slice with plain `std::time::Instant` timing.
//!
//! Behaviour:
//!
//! * each benchmark runs one untimed warm-up iteration, then up to
//!   `sample_size` timed iterations, capped by a per-benchmark wall-clock
//!   budget (default 3 s) so `cargo bench` finishes in minutes, not hours;
//! * results (min / mean / max per iteration) are printed to stdout;
//! * when the `COLOGNE_BENCH_JSON` environment variable names a file, one
//!   JSON object per benchmark is appended to it — the repository's
//!   `BENCH_seed.json` baseline is recorded this way.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `function_name/parameter` form.
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// Parameter-only form.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    sample_size: usize,
    budget: Duration,
    /// Collected per-iteration times for the current benchmark.
    samples: Vec<Duration>,
}

impl Bencher {
    /// Run `routine` repeatedly, timing each iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // One untimed warm-up iteration.
        std::hint::black_box(routine());
        let start = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            std::hint::black_box(routine());
            self.samples.push(t0.elapsed());
            if start.elapsed() > self.budget {
                break;
            }
        }
    }
}

fn record(name: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{name:<60} no samples");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().unwrap();
    let max = samples.iter().max().unwrap();
    println!(
        "{name:<60} min {min:>12?}  mean {mean:>12?}  max {max:>12?}  ({} iters)",
        samples.len()
    );
    if let Ok(path) = std::env::var("COLOGNE_BENCH_JSON") {
        use std::io::Write as _;
        let line = format!(
            "{{\"name\":\"{}\",\"iters\":{},\"min_ns\":{},\"mean_ns\":{},\"max_ns\":{}}}\n",
            name,
            samples.len(),
            min.as_nanos(),
            mean.as_nanos(),
            max.as_nanos()
        );
        if let Ok(mut f) = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(&path)
        {
            let _ = f.write_all(line.as_bytes());
        }
    }
}

/// The benchmark driver.
pub struct Criterion {
    sample_size: usize,
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        let budget_secs = std::env::var("COLOGNE_BENCH_BUDGET_SECS")
            .ok()
            .and_then(|s| s.parse().ok())
            .unwrap_or(3);
        Criterion {
            sample_size: 30,
            budget: Duration::from_secs(budget_secs),
        }
    }
}

impl Criterion {
    /// Set the number of timed iterations per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n;
        self
    }

    fn run_one(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) {
        let mut b = Bencher {
            sample_size: self.sample_size,
            budget: self.budget,
            samples: Vec::with_capacity(self.sample_size),
        };
        f(&mut b);
        record(name, &b.samples);
    }

    /// Run one standalone benchmark.
    pub fn bench_function(&mut self, name: &str, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        self.run_one(name, f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'c> {
    criterion: &'c mut Criterion,
    name: String,
}

impl<'c> BenchmarkGroup<'c> {
    /// Run one benchmark with an explicit input value.
    pub fn bench_with_input<I>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        f: impl FnOnce(&mut Bencher, &I),
    ) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        self.criterion.run_one(&name, |b| f(b, input));
        self
    }

    /// Run one benchmark without an input.
    pub fn bench_function(&mut self, id: impl Display, f: impl FnOnce(&mut Bencher)) -> &mut Self {
        let name = format!("{}/{}", self.name, id);
        self.criterion.run_one(&name, f);
        self
    }

    /// Finish the group (formatting no-op, kept for API compatibility).
    pub fn finish(self) {}
}

/// Declare a benchmark group: either the plain form
/// `criterion_group!(benches, f1, f2)` or the configured form used in this
/// repository with `name = ...; config = ...; targets = ...`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Entry point for `harness = false` bench targets.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            // `cargo bench` passes flags like `--bench`; they are irrelevant
            // to this minimal harness.
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_collects_samples() {
        let mut c = Criterion::default().sample_size(5);
        let mut runs = 0usize;
        c.bench_function("shim/self_test", |b| {
            b.iter(|| {
                runs += 1;
                runs
            });
        });
        // warm-up + up to 5 timed iterations
        assert!((2..=6).contains(&runs), "ran {runs} times");
    }

    #[test]
    fn group_and_ids_format() {
        assert_eq!(
            BenchmarkId::new("centralized", "3x3").to_string(),
            "centralized/3x3"
        );
        assert_eq!(BenchmarkId::from_parameter(42).to_string(), "42");
        let mut c = Criterion::default().sample_size(2);
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::from_parameter(7), &7usize, |b, &n| {
            b.iter(|| n * 2);
        });
        group.finish();
    }
}
