//! Minimal, dependency-free stand-in for the `rand` crate.
//!
//! This workspace builds fully offline, so the real `rand` cannot be
//! downloaded. The workload generators in `cologne-usecases` only need a
//! deterministic seedable RNG with uniform integer/float sampling and a
//! Bernoulli helper; this crate provides exactly that surface
//! (`StdRng::seed_from_u64`, `Rng::gen_range`, `Rng::gen_bool`).
//!
//! The generator is splitmix64: high-quality enough for synthetic workload
//! generation, trivially deterministic, and identical on every platform.
//! Sequences differ from the real `rand::StdRng` (ChaCha12), which is fine —
//! nothing in the repository depends on a specific stream, only on
//! reproducibility for a fixed seed.

use std::ops::{Range, RangeInclusive};

/// Namespaced RNG types, mirroring `rand::rngs`.
pub mod rngs {
    /// Deterministic seedable RNG (splitmix64 core).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

pub use rngs::StdRng;

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Build an RNG from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> Self {
        // Avoid the all-zero fixpoint and decorrelate small seeds.
        StdRng {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
        }
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A range of values that can be sampled uniformly (the subset of
/// `rand::distributions::uniform::SampleRange` the workspace uses).
pub trait SampleRange {
    /// Element type produced by sampling.
    type Output;
    /// Draw one uniform sample using `next` as the entropy source.
    fn sample(self, next: &mut dyn FnMut() -> u64) -> Self::Output;
}

fn uniform_u64(span: u64, next: &mut dyn FnMut() -> u64) -> u64 {
    // Modulo bias is below 2^-32 for every span used in this workspace.
    next() % span
}

macro_rules! impl_int_ranges {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample(self, next: &mut dyn FnMut() -> u64) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64(span, next) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample(self, next: &mut dyn FnMut() -> u64) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                (lo as i128 + uniform_u64(span, next) as i128) as $t
            }
        }
    )*};
}

impl_int_ranges!(i64, u64, i32, u32, u8, usize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample(self, next: &mut dyn FnMut() -> u64) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 53 uniform mantissa bits in [0, 1).
        let unit = (next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

/// Sampling methods, mirroring `rand::Rng`.
pub trait Rng {
    /// Next raw 64 bits of entropy.
    fn next_u64(&mut self) -> u64;

    /// Uniform sample from a range.
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output {
        let mut next = || self.next_u64();
        range.sample(&mut next)
    }

    /// Bernoulli trial with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} out of range");
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        splitmix64(&mut self.state)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..7);
            assert!((-5..7).contains(&v));
            let w = rng.gen_range(0i64..=3);
            assert!((0..=3).contains(&w));
            let u = rng.gen_range(0usize..4);
            assert!(u < 4);
            let f = rng.gen_range(0.5f64..1.5);
            assert!((0.5..1.5).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!(
            (2_000..4_000).contains(&hits),
            "p=0.3 produced {hits}/10000"
        );
    }
}
