//! Minimal, dependency-free stand-in for the `proptest` crate.
//!
//! This workspace builds fully offline, so the real `proptest` cannot be
//! downloaded. The repository's property tests only use a small slice of the
//! API — the `proptest!` macro, range/tuple/`vec`/`bool::ANY` strategies,
//! `prop_assert!`/`prop_assert_eq!` and `ProptestConfig::with_cases` — and
//! this crate implements exactly that slice.
//!
//! Differences from real proptest, by design:
//!
//! * sampling is uniform and deterministic (seeded from the test name), so a
//!   failing case reproduces on every run without a persistence file;
//! * there is **no shrinking** — the failure message prints the raw sampled
//!   inputs instead of a minimized counterexample.
//!
//! Like real proptest, the per-test case count can be raised (or lowered)
//! without touching the sources through the `PROPTEST_CASES` environment
//! variable; the release-mode CI job uses it to run the same properties with
//! a hardened case count.

use std::fmt;
use std::ops::Range;

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run `cases` random cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }

    /// The case count actually used by the runner: the configured value,
    /// overridden by the `PROPTEST_CASES` environment variable when set to a
    /// positive integer (mirroring real proptest). CI uses this to re-run
    /// the same property tests with a raised case count without touching the
    /// sources.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.trim().parse::<u32>().ok())
            .filter(|&n| n > 0)
            .unwrap_or(self.cases)
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Failure raised by `prop_assert!`-style macros inside a property test.
#[derive(Debug, Clone)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Build a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError(message.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Deterministic RNG driving the samplers (splitmix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed deterministically from a test name.
    pub fn from_name(name: &str) -> Self {
        // FNV-1a over the name, decorrelated through one splitmix round.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut rng = TestRng { state: h };
        rng.next_u64();
        rng
    }

    /// Next raw 64 bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n.max(1)
    }
}

/// Value-generation strategies.
pub mod strategy {
    use super::TestRng;
    use std::ops::Range;

    /// A source of random values of one type.
    pub trait Strategy {
        /// The generated value type.
        type Value;
        /// Draw one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "cannot sample empty range");
                    let span = (self.end as i128 - self.start as i128) as u64;
                    (self.start as i128 + rng.below(span) as i128) as $t
                }
            }
        )*};
    }

    impl_range_strategy!(i64, u64, i32, u32, u8, usize);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);

    /// Strategy producing `Vec`s with lengths drawn from a range.
    pub struct VecStrategy<S> {
        pub(crate) element: S,
        pub(crate) size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = self.size.clone().sample(rng);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Uniform boolean strategy (`prop::bool::ANY`).
    pub struct AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn sample(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

/// Collection strategies (`prop::collection`).
pub mod collection {
    use super::strategy::{Strategy, VecStrategy};
    use std::ops::Range;

    /// `Vec` strategy with element strategy and size range.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }
}

/// Boolean strategies (`prop::bool`).
pub mod bool {
    /// Uniform boolean.
    pub const ANY: crate::strategy::AnyBool = crate::strategy::AnyBool;
}

/// The common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::Strategy;
    pub use crate::{prop_assert, prop_assert_eq, proptest, ProptestConfig, TestCaseError};
}

/// Assert a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Assert equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr $(,)?) => {{
        let lhs = $lhs;
        let rhs = $rhs;
        if !(lhs == rhs) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{:?}` != `{:?}`",
                lhs, rhs
            )));
        }
    }};
}

/// Define property tests. Supports the subset of real proptest syntax used in
/// this repository: an optional `#![proptest_config(...)]` header followed by
/// `#[test] fn name(arg in strategy, ...) { body }` items.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let cases = config.effective_cases();
            let mut rng = $crate::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
            for case in 0..cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let outcome = (move || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property '{}' failed at case {}/{}: {}\ninputs: {}",
                        stringify!($name),
                        case + 1,
                        cases,
                        e,
                        inputs
                    );
                }
            }
        }
    )*};
}

// Re-exported so the macros can reference these via `$crate`.
pub use strategy::Strategy;

/// Uniform f64 ranges are not needed by the current tests but are cheap to
/// support and keep the shim future-proof for workload-style properties.
impl strategy::Strategy for Range<f64> {
    type Value = f64;
    fn sample(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + unit * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        /// Ranges, tuples, vecs and bools all sample within bounds.
        #[test]
        fn sampled_values_in_bounds(
            x in -5i64..5,
            pair in (0u8..3, 0usize..7),
            flags in prop::collection::vec(prop::bool::ANY, 0..4),
            rows in prop::collection::vec((0i64..4, -10i64..10), 1..20),
        ) {
            prop_assert!((-5..5).contains(&x));
            prop_assert!(pair.0 < 3 && pair.1 < 7, "pair out of range: {pair:?}");
            prop_assert!(flags.len() < 4);
            for (g, v) in &rows {
                prop_assert!((0..4).contains(g) && (-10..10).contains(v));
            }
            prop_assert_eq!(rows.len(), rows.len());
        }
    }

    #[test]
    fn deterministic_per_name() {
        let mut a = crate::TestRng::from_name("x");
        let mut b = crate::TestRng::from_name("x");
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::from_name("y");
        assert_ne!(crate::TestRng::from_name("x").next_u64(), c.next_u64());
    }

    #[test]
    #[should_panic(expected = "property")]
    fn failing_property_reports_inputs() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(4))]
            #[allow(unused)]
            fn always_fails(v in 0i64..3) {
                prop_assert!(v > 100, "v was {v}");
            }
        }
        always_fails();
    }
}
