//! Integration tests for the `cologne-serve` serving layer: concurrent
//! multi-tenant sessions, per-tenant isolation, admission control and
//! backpressure, per-tenant budgets, and the headline contract of the wire
//! protocol — a remote solve returns a `SolveResponse` byte-identical
//! (elapsed-normalized) to the same solve executed in-process.

use std::num::NonZeroU64;
use std::sync::mpsc;
use std::thread;

use cologne::datalog::{NodeId, Value};
use cologne::{DeploymentBuilder, ProgramParams, SolveRequest, SolveResponse, VarDomain};
use cologne_serve::{
    Client, ClientError, ErrorCode, Server, ServerConfig, TenantBudget, ACLOUD_DEMO,
};

/// Deterministic parameters for the demo program: node-limit-bounded, no
/// wall-clock budget, so a solve's report is byte-reproducible.
fn det_params() -> ProgramParams {
    ProgramParams::new()
        .with_var_domain("assign", VarDomain::BOOL)
        .with_solver_max_time(None)
        .with_solver_node_limit(Some(200_000))
}

fn det_config() -> ServerConfig {
    let mut cfg = ServerConfig::new(ACLOUD_DEMO);
    cfg.params = det_params();
    cfg
}

/// The facts of one tenant: `vms` VMs (sizes derived from the tenant id so
/// every tenant's optimum differs) over two 16-GB hosts.
fn tenant_facts(vms: u32) -> Vec<(&'static str, Vec<Value>)> {
    let mut facts = Vec::new();
    for vid in 0..vms {
        facts.push((
            "vm",
            vec![
                Value::Int(i64::from(vid)),
                Value::Int(i64::from(10 + 7 * (vid % 5))),
                Value::Int(2),
            ],
        ));
    }
    for hid in [100, 101] {
        facts.push(("host", vec![Value::Int(hid), Value::Int(0), Value::Int(0)]));
        facts.push(("hostMemThres", vec![Value::Int(hid), Value::Int(16)]));
    }
    facts
}

/// The same tenant workload executed in-process through the public
/// `Deployment::solve` entry point.
fn solve_in_process(
    params: ProgramParams,
    facts: &[(&'static str, Vec<Value>)],
    request: &SolveRequest,
) -> SolveResponse {
    let mut d = DeploymentBuilder::new(ACLOUD_DEMO)
        .params(params)
        .build()
        .expect("demo program compiles");
    for (rel, tuple) in facts {
        d.relation(rel)
            .expect("relation exists")
            .insert(tuple.clone())
            .expect("tuple matches schema");
    }
    d.solve(request).expect("in-process solve succeeds")
}

/// The same workload through the wire.
fn solve_remote(
    addr: std::net::SocketAddr,
    tenant: &str,
    facts: &[(&'static str, Vec<Value>)],
    request: &SolveRequest,
) -> SolveResponse {
    let mut client = Client::connect(addr).expect("connect");
    client.hello(tenant).expect("hello");
    for (rel, tuple) in facts {
        client
            .insert(NodeId(0), rel, tuple.clone())
            .expect("remote insert succeeds");
    }
    let response = client.solve(request).expect("remote solve succeeds");
    client.bye().expect("clean close");
    response
}

#[test]
fn remote_solve_is_byte_identical_to_in_process() {
    let server = Server::bind("127.0.0.1:0", det_config()).expect("bind");
    let request = SolveRequest::all().with_events(1024);
    let facts = tenant_facts(4);

    let remote = solve_remote(server.local_addr(), "t0", &facts, &request);
    let local = solve_in_process(det_params(), &facts, &request);

    assert!(remote.single().expect("one node").feasible);
    assert!(
        !remote.events.is_empty(),
        "events must stream over the wire"
    );
    assert_eq!(
        remote.normalized(),
        local.normalized(),
        "wire and in-process responses must be byte-identical modulo wall-clock"
    );
    server.shutdown();
}

#[test]
fn concurrent_tenants_are_isolated() {
    let server = Server::bind("127.0.0.1:0", det_config()).expect("bind");
    let addr = server.local_addr();
    let request = SolveRequest::all().with_events(256);

    // Eight tenants with different workloads solve concurrently; each must
    // get exactly the answer its own facts produce in isolation.
    let handles: Vec<_> = (0..8u32)
        .map(|i| {
            let request = request.clone();
            thread::spawn(move || {
                let facts = tenant_facts(2 + (i % 4));
                let remote = solve_remote(addr, &format!("tenant-{i}"), &facts, &request);
                (i, facts, remote)
            })
        })
        .collect();

    for handle in handles {
        let (i, facts, remote) = handle.join().expect("tenant thread");
        let local = solve_in_process(det_params(), &facts, &request);
        assert_eq!(
            remote.normalized(),
            local.normalized(),
            "tenant {i} must see only its own facts"
        );
        // the assignment table covers exactly this tenant's VMs × hosts
        let report = remote.single().expect("one node");
        assert_eq!(
            report.table("assign").len(),
            (2 + (i % 4)) as usize * 2,
            "tenant {i} assignment grid"
        );
    }

    let stats = server.stats();
    assert_eq!(stats.accepted, 8);
    assert_eq!(stats.solves, 8);
    assert_eq!(stats.rejected_busy, 0);
    server.shutdown();
}

#[test]
fn admission_control_rejects_beyond_session_limit() {
    let mut cfg = det_config();
    cfg.max_sessions = 1;
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind");

    let mut first = Client::connect(server.local_addr()).expect("first connect");
    first.hello("first").expect("first session admitted");

    // the second connection is refused with one typed Busy frame
    let mut second = Client::connect(server.local_addr()).expect("tcp connect still works");
    match second.hello("second") {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::Busy),
        other => panic!("expected Busy, got {other:?}"),
    }

    // once the first session closes, a slot frees up
    first.bye().expect("clean close");
    for _ in 0..200 {
        let mut retry = Client::connect(server.local_addr()).expect("reconnect");
        if retry.hello("third").is_ok() {
            let busy = server.stats().rejected_busy;
            assert!(busy >= 1, "the refused connection must be counted");
            server.shutdown();
            return;
        }
        thread::sleep(std::time::Duration::from_millis(10));
    }
    panic!("slot never freed after the first session closed");
}

#[test]
fn full_solve_queue_reports_overloaded() {
    let mut cfg = det_config();
    // one worker, rendezvous queue: a solve is admitted only when the
    // worker is idle, so a second solve while the first runs is refused
    cfg.workers = 1;
    cfg.queue_depth = 0;
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind");
    let addr = server.local_addr();

    // a workload big enough to keep the single worker busy after its
    // first incumbent streams out (exact search, generous node budget)
    let facts = tenant_facts(10);
    let request = SolveRequest::all().with_events(1024);
    let (started_tx, started_rx) = mpsc::channel();
    let solver_thread = thread::spawn(move || {
        let mut client = Client::connect(addr).expect("connect");
        client.hello("busy-tenant").expect("hello");
        for (rel, tuple) in &facts {
            client
                .insert(NodeId(0), rel, tuple.clone())
                .expect("insert");
        }
        let response = client
            .solve_streaming(&request, &mut |_, _| {
                let _ = started_tx.send(());
            })
            .expect("long solve succeeds");
        client.bye().expect("clean close");
        response
    });

    // first streamed event ⇒ the worker is mid-solve right now
    started_rx.recv().expect("solve must stream events");
    let mut other = Client::connect(addr).expect("connect second");
    other.hello("impatient").expect("hello");
    match other.solve(&SolveRequest::all()) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::Overloaded),
        other => panic!("expected Overloaded, got {other:?}"),
    }

    let response = solver_thread.join().expect("solver thread");
    assert!(response.single().expect("one node").feasible);
    assert!(server.stats().overloaded >= 1);
    server.shutdown();
}

#[test]
fn tenant_budget_caps_search_effort() {
    let mut cfg = det_config();
    cfg.budget = TenantBudget {
        max_nodes: NonZeroU64::new(50),
        max_solve_time: None,
    };
    let server = Server::bind("127.0.0.1:0", cfg).expect("bind");

    let facts = tenant_facts(8);
    let request = SolveRequest::all();
    let remote = solve_remote(server.local_addr(), "capped", &facts, &request);
    let report = remote.single().expect("one node");
    assert!(
        report.stats.nodes <= 50,
        "the tenant budget must cap search nodes, got {}",
        report.stats.nodes
    );

    // the budget clamp is itself deterministic: in-process with the same
    // clamped parameters gives the identical truncated search
    let mut params = det_params();
    params.clamp_solver_budget(Some(50), None);
    let local = solve_in_process(params, &facts, &request);
    assert_eq!(remote.normalized(), local.normalized());
    server.shutdown();
}

#[test]
fn schema_errors_surface_as_typed_frames_and_session_survives() {
    let server = Server::bind("127.0.0.1:0", det_config()).expect("bind");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client.hello("t").expect("hello");

    // unknown relation → typed error frame, session stays usable
    match client.insert(NodeId(0), "vmm", vec![Value::Int(1)]) {
        Err(ClientError::Server { code, message }) => {
            assert_eq!(code, ErrorCode::UnknownRelation);
            assert!(message.contains("vm"), "did-you-mean detail: {message}");
        }
        other => panic!("expected UnknownRelation, got {other:?}"),
    }

    // schema mismatch (wrong arity) → typed error frame
    match client.insert(NodeId(0), "vm", vec![Value::Int(1)]) {
        Err(ClientError::Server { code, .. }) => assert_eq!(code, ErrorCode::SchemaMismatch),
        other => panic!("expected SchemaMismatch, got {other:?}"),
    }

    // the session still works end to end after both rejections
    for (rel, tuple) in tenant_facts(2) {
        client.insert(NodeId(0), rel, tuple).expect("valid insert");
    }
    let response = client.solve(&SolveRequest::all()).expect("solve succeeds");
    assert!(response.single().expect("one node").feasible);
    client.bye().expect("clean close");
    server.shutdown();
}
