//! Tests for the dual-bound subsystem: soundness of the relaxation engines
//! against the reference searcher's proven optimum on random models, and
//! grounded use-case pins showing that (a) `bound_mode = Off` (the default)
//! is bit-identical to a build without the subsystem, (b) a strict
//! `gap_limit = Some(0.0)` never terminates a search early, and (c) a real
//! gap limit stops an exact ACloud search with a certificate in measurably
//! fewer nodes than the full optimality proof.

use proptest::prelude::*;

use cologne::datalog::{NodeId, Value};
use cologne::solver::{
    solve_reference, BoundMode, DualBound, LinearRelaxation, Model, Objective, RelaxedMerge,
    SearchConfig,
};
use cologne::{
    CologneInstance, ProgramParams, SolveReport, SolverBoundMode, SolverBranching, VarDomain,
};
use cologne_usecases::programs::{ACLOUD_CENTRALIZED, WIRELESS_CENTRALIZED};
use cologne_usecases::{build_followsun_deployment, FollowSunConfig, FollowSunWorkload};

// ---------------------------------------------------------------------------
// Soundness: on random models, no engine ever claims a bound on the wrong
// side of the reference searcher's proven optimum.
// ---------------------------------------------------------------------------

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Both engines produce sound bounds on random linear COPs: for
    /// minimization the dual bound never exceeds the proven optimum, for
    /// maximization it never falls below it — under any branching
    /// configuration (the relaxed diagram reuses the search heuristic).
    #[test]
    fn engine_bounds_never_cross_reference_optimum(
        num_vars in 2usize..5,
        bounds in prop::collection::vec((-4i64..2, 2i64..10), 2..5),
        constraints in prop::collection::vec(
            (prop::collection::vec(-3i64..4, 2..5), -10i64..20, 0u8..4),
            1..6
        ),
        objective_coeffs in prop::collection::vec(-3i64..4, 2..5),
        maximize in prop::bool::ANY,
    ) {
        let mut m = Model::new();
        let vars: Vec<_> = (0..num_vars)
            .map(|i| {
                let (lo, hi) = bounds[i % bounds.len()];
                m.new_var(lo, hi)
            })
            .collect();
        for (coeffs, bound, kind) in &constraints {
            let terms: Vec<(i64, _)> = coeffs
                .iter()
                .zip(vars.iter())
                .map(|(&c, &v)| (c, v))
                .collect();
            match kind % 4 {
                0 => m.linear_le(&terms, *bound),
                1 => m.linear_ge(&terms, *bound),
                2 => m.linear_eq(&terms, *bound),
                _ => m.linear_ne(&terms, *bound),
            }
        }
        let obj_terms: Vec<(i64, _)> = objective_coeffs
            .iter()
            .zip(vars.iter())
            .map(|(&c, &v)| (c, v))
            .collect();
        let obj = m.linear_var(&obj_terms, 0);
        let objective = if maximize {
            Objective::Maximize(obj)
        } else {
            Objective::Minimize(obj)
        };
        let cfg = SearchConfig::default();
        let reference = solve_reference(&m, objective, &cfg);
        prop_assert!(reference.complete, "small models must be solved to proof");
        let Some(optimum) = reference.best_objective else {
            return Ok(()); // infeasible: any bound is vacuously sound
        };
        let engines: [&dyn DualBound; 2] = [&LinearRelaxation, &RelaxedMerge::default()];
        for engine in engines {
            let Some(cert) = engine.certify(&m, objective, &cfg, m.domains()) else {
                continue; // an engine may decline a model it cannot relax
            };
            if maximize {
                prop_assert!(
                    cert.dual_bound >= optimum,
                    "{}: upper bound {} below optimum {optimum}",
                    cert.engine, cert.dual_bound
                );
            } else {
                prop_assert!(
                    cert.dual_bound <= optimum,
                    "{}: lower bound {} exceeds optimum {optimum}",
                    cert.engine, cert.dual_bound
                );
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Grounded use-case pins.
// ---------------------------------------------------------------------------

fn acloud_params() -> ProgramParams {
    ProgramParams::new()
        .with_var_domain("assign", VarDomain::BOOL)
        .with_solver_branching(SolverBranching::FirstFail)
        .with_solver_max_time(None)
        .with_solver_node_limit(Some(200_000))
}

fn acloud_instance(
    params: ProgramParams,
    vms: &[(i64, i64, i64)],
    hosts: &[i64],
) -> CologneInstance {
    let mut inst = CologneInstance::new(NodeId(0), ACLOUD_CENTRALIZED, params).unwrap();
    for &(vid, cpu, mem) in vms {
        inst.relation("vm")
            .unwrap()
            .insert(vec![Value::Int(vid), Value::Int(cpu), Value::Int(mem)])
            .unwrap();
    }
    for &hid in hosts {
        inst.relation("host")
            .unwrap()
            .insert(vec![Value::Int(hid), Value::Int(0), Value::Int(0)])
            .unwrap();
        inst.relation("hostMemThres")
            .unwrap()
            .insert(vec![Value::Int(hid), Value::Int(32)])
            .unwrap();
    }
    inst
}

const SMALL_VMS: [(i64, i64, i64); 4] = [(1, 40, 4), (2, 20, 4), (3, 30, 4), (4, 25, 4)];

/// Twelve VMs over three hosts: the largest exact ACloud scenario in the
/// acceptance criteria, big enough that the optimality *proof* visibly
/// outweighs finding the optimum.
const LARGE_VMS: [(i64, i64, i64); 12] = [
    (1, 40, 2),
    (2, 20, 2),
    (3, 30, 2),
    (4, 25, 2),
    (5, 35, 2),
    (6, 15, 2),
    (7, 45, 2),
    (8, 10, 2),
    (9, 50, 2),
    (10, 5, 2),
    (11, 55, 2),
    (12, 60, 2),
];

/// The search-trajectory fields a dual bound must never perturb.
fn trajectory(report: &SolveReport) -> (Option<i64>, u64, u64, u64, u64, bool) {
    (
        report.objective,
        report.stats.nodes,
        report.stats.fails,
        report.stats.solutions,
        report.stats.max_depth,
        report.proven_optimal,
    )
}

#[test]
fn default_run_carries_no_bound_artifacts() {
    let mut inst = acloud_instance(acloud_params(), &SMALL_VMS, &[10, 11]);
    let report = inst.invoke_solver().unwrap();
    assert!(report.feasible);
    assert!(report.certificate.is_none(), "Off is the default");
    assert_eq!(report.stats.dual_bound, None);
    assert_eq!(report.stats.gap, None);
}

#[test]
fn explicit_off_is_identical_to_default() {
    let mut default_inst = acloud_instance(acloud_params(), &SMALL_VMS, &[10, 11]);
    let off_params = acloud_params()
        .with_solver_bound_mode(SolverBoundMode::Off)
        .with_solver_gap_limit(None);
    let mut off_inst = acloud_instance(off_params, &SMALL_VMS, &[10, 11]);
    let mut a = default_inst.invoke_solver().unwrap();
    let mut b = off_inst.invoke_solver().unwrap();
    // Only the wall clock may differ between the two runs.
    a.stats.elapsed_micros = 0;
    b.stats.elapsed_micros = 0;
    assert_eq!(a, b);
}

#[test]
fn acloud_gap_zero_reproduces_the_full_search() {
    let mut off = acloud_instance(acloud_params(), &SMALL_VMS, &[10, 11]);
    let gapped_params = acloud_params()
        .with_solver_bound_mode(SolverBoundMode::Auto)
        .with_solver_gap_limit(Some(0.0));
    let mut gapped = acloud_instance(gapped_params, &SMALL_VMS, &[10, 11]);

    let full = off.invoke_solver().unwrap();
    let bounded = gapped.invoke_solver().unwrap();

    // The strict comparison (`gap < limit`) makes 0.0 a no-op: the bound is
    // computed and reported but the search trajectory is byte-identical.
    assert_eq!(trajectory(&full), trajectory(&bounded));
    assert_eq!(full.assignments, bounded.assignments);
    let cert = bounded
        .certificate
        .as_ref()
        .expect("a bound mode is on: the report must carry a certificate");
    assert_eq!(bounded.stats.dual_bound, Some(cert.dual_bound));
    assert!(
        cert.dual_bound <= bounded.objective.unwrap(),
        "dual bound {} must not exceed the optimum {}",
        cert.dual_bound,
        bounded.objective.unwrap()
    );
    assert!(full.certificate.is_none());
}

#[test]
fn wireless_gap_zero_reproduces_the_full_search() {
    let make = |params: ProgramParams| {
        let mut inst = CologneInstance::new(NodeId(0), WIRELESS_CENTRALIZED, params).unwrap();
        let mut link = inst.relation("link").unwrap();
        for (a, b) in [(0i64, 1i64), (1, 2), (2, 3)] {
            link.insert(vec![Value::Int(a), Value::Int(b)]).unwrap();
            link.insert(vec![Value::Int(b), Value::Int(a)]).unwrap();
        }
        for n in 0..4i64 {
            inst.relation("numInterface")
                .unwrap()
                .insert(vec![Value::Int(n), Value::Int(2)])
                .unwrap();
        }
        inst.relation("primaryUser")
            .unwrap()
            .insert(vec![Value::Int(1), Value::Int(1)])
            .unwrap();
        inst
    };
    let base = ProgramParams::new()
        .with_var_domain("assign", VarDomain::new(1, 11))
        .with_constant("F_mindiff", 3)
        .with_solver_branching(SolverBranching::FirstFail)
        .with_solver_max_time(None)
        .with_solver_node_limit(Some(50_000));
    let mut off = make(base.clone());
    let mut gapped = make(
        base.with_solver_bound_mode(SolverBoundMode::Relaxed)
            .with_solver_gap_limit(Some(0.0)),
    );
    let full = off.invoke_solver().unwrap();
    let bounded = gapped.invoke_solver().unwrap();
    assert!(full.feasible);
    assert_eq!(trajectory(&full), trajectory(&bounded));
    assert_eq!(full.assignments, bounded.assignments);
    if let Some(cert) = &bounded.certificate {
        assert_eq!(cert.engine, "relaxed_merge");
        assert!(cert.dual_bound <= bounded.objective.unwrap());
    }
}

#[test]
fn followsun_bound_is_sound_on_the_grounded_negotiation_cop() {
    let config = FollowSunConfig {
        data_centers: 3,
        capacity: 30,
        max_initial_allocation: 6,
        solver_node_limit: 20_000,
        seed: 5,
        ..FollowSunConfig::default()
    };
    let workload = FollowSunWorkload::generate(&config);
    let mut driver = build_followsun_deployment(&config, &workload);
    let initiator = {
        let (a, b) = workload.topology.links()[0];
        let (initiator, peer) = (a.max(b), a.min(b));
        driver
            .insert(
                NodeId(initiator),
                "setLink",
                vec![Value::Addr(NodeId(initiator)), Value::Addr(NodeId(peer))],
            )
            .unwrap();
        driver.run_messages_until(cologne::net::SimTime::from_secs(2));
        initiator
    };
    let inst = driver.instance_mut(NodeId(initiator)).unwrap();
    inst.params_mut().solver_max_time = None;
    let cop = inst.ground_only().unwrap();
    assert!(!cop.is_trivial(), "negotiation must ground a real COP");
    let (_, obj) = cop.objective.expect("Follow-the-Sun minimizes a cost");

    let off_cfg = SearchConfig {
        time_limit: None,
        ..inst.search_config().clone()
    };
    let full = cop.model.minimize(obj, &off_cfg);
    let gapped_cfg = SearchConfig {
        bound_mode: BoundMode::Auto,
        gap_limit: Some(0.0),
        ..off_cfg.clone()
    };
    let bounded = cop.model.minimize(obj, &gapped_cfg);

    assert_eq!(full.best_objective, bounded.best_objective);
    assert_eq!(full.stats.nodes, bounded.stats.nodes);
    assert_eq!(full.stats.fails, bounded.stats.fails);
    assert_eq!(full.complete, bounded.complete);
    let cert = bounded
        .certificate
        .as_ref()
        .expect("Auto must bound the linear Follow-the-Sun objective");
    assert!(cert.dual_bound <= bounded.best_objective.unwrap());
    assert_eq!(full.certificate, None);
    inst.recycle(cop);
}

#[test]
fn acloud_gap_limit_stops_the_exact_proof_early_with_a_certificate() {
    let mut off = acloud_instance(acloud_params(), &LARGE_VMS, &[10, 11, 12]);
    let gapped_params = acloud_params()
        .with_solver_bound_mode(SolverBoundMode::Auto)
        .with_solver_gap_limit(Some(0.05));
    let mut gapped = acloud_instance(gapped_params, &LARGE_VMS, &[10, 11, 12]);

    let full = off.invoke_solver().unwrap();
    let bounded = gapped.invoke_solver().unwrap();

    assert!(full.feasible && bounded.feasible);
    let cert = bounded
        .certificate
        .as_ref()
        .expect("gap-terminated run must carry its certificate");
    // The incumbent the gap-limited run stops on is certified within 5% of
    // the dual bound — and the stop saves real work vs. the full proof.
    let gap = bounded.stats.gap.expect("gap is live once a bound exists");
    assert!(gap < 0.05, "terminating gap {gap} must beat the limit");
    assert!(
        bounded.stats.nodes < full.stats.nodes,
        "gap stop at {} nodes must beat the full proof's {} (certificate: {cert})",
        bounded.stats.nodes,
        full.stats.nodes
    );
    assert!(bounded.stats.limit_reached, "the gap is a limit");
    // Soundness on the big instance too: the certified bound never crosses
    // the true optimum the full run proved.
    assert!(cert.dual_bound <= full.objective.unwrap());
}
