//! Integration test: the compiler pipeline (parse → analyze → localize →
//! codegen) applied to every shipped program, plus the distributed runtime
//! executing a localized rule across simulated nodes.

use cologne::datalog::{NodeId, Value};
use cologne::net::{LinkProps, SimTime, Topology};
use cologne::{DeploymentBuilder, ProgramParams, RuleClass, VarDomain};
use cologne_colog::{analyze, generate_cpp, localize_rules, parse_program};
use cologne_usecases::compactness_table;
use cologne_usecases::programs::{table2_programs, FOLLOWSUN_DISTRIBUTED};

#[test]
fn every_shipped_program_passes_the_whole_pipeline() {
    for (name, source) in table2_programs() {
        let program = parse_program(&source).unwrap_or_else(|e| panic!("{name}: parse: {e}"));
        let analysis = analyze(&program).unwrap_or_else(|e| panic!("{name}: analysis: {e}"));
        let localized =
            localize_rules(&program.rules).unwrap_or_else(|e| panic!("{name}: localize: {e}"));
        assert!(
            localized.len() >= program.rules.len(),
            "{name}: localization lost rules"
        );
        let generated = generate_cpp(&program, &analysis, "pipeline");
        assert!(
            generated.loc() > 100,
            "{name}: suspiciously small generated code"
        );
        // every rule received a classification
        assert_eq!(analysis.classes.len(), program.rules.len());
    }
}

#[test]
fn distributed_followsun_rules_ship_neighbour_state() {
    // Two data centers connected by one link: the localization of rule d2
    // (and d5/d6/c2) must make node 1's curVm/commCost/resource visible at
    // node 0 as tmp_* relations, shipped over the simulated network.
    let params = ProgramParams::new()
        .with_var_domain("migVm", VarDomain::new(-10, 10))
        .with_solver_node_limit(Some(5_000));
    let mut driver = DeploymentBuilder::new(FOLLOWSUN_DISTRIBUTED)
        .params(params)
        .topology(Topology::line(2, LinkProps::default()))
        .build()
        .unwrap();

    for node in [0u32, 1] {
        let x = Value::Addr(NodeId(node));
        let other = Value::Addr(NodeId(1 - node));
        let n = NodeId(node);
        driver
            .insert(n, "link", vec![x.clone(), other.clone()])
            .unwrap();
        driver
            .insert(n, "opCost", vec![x.clone(), Value::Int(10)])
            .unwrap();
        driver
            .insert(n, "resource", vec![x.clone(), Value::Int(20)])
            .unwrap();
        driver
            .insert(n, "migCost", vec![x.clone(), other, Value::Int(10)])
            .unwrap();
        for d in 0..2i64 {
            driver
                .insert(n, "dc", vec![x.clone(), Value::Int(d)])
                .unwrap();
            driver
                .insert(
                    n,
                    "curVm",
                    vec![
                        x.clone(),
                        Value::Int(d),
                        Value::Int(if node == 0 { 6 } else { 1 }),
                    ],
                )
                .unwrap();
            driver
                .insert(
                    n,
                    "commCost",
                    vec![
                        x.clone(),
                        Value::Int(d),
                        Value::Int(if node as i64 == d { 10 } else { 80 }),
                    ],
                )
                .unwrap();
        }
    }
    driver.run_messages_until(SimTime::from_secs(2));

    // the shipping rules created tmp_* relations at node 0 holding node 1's state
    let inst0 = driver.instance(NodeId(0)).unwrap();
    let tmp_relations: Vec<String> = inst0
        .program()
        .rules
        .iter()
        .map(|r| r.head.name.clone())
        .filter(|n| n.starts_with("tmp_"))
        .collect();
    assert!(
        !tmp_relations.is_empty(),
        "localization should introduce tmp_* relations"
    );
    let populated = tmp_relations
        .iter()
        .filter(|rel| inst0.scan(rel).next().is_some())
        .count();
    assert!(
        populated > 0,
        "neighbour state must arrive at node 0 over the network"
    );
    assert!(
        driver.traffic(NodeId(1)).bytes_sent > 0,
        "node 1 must have sent tuples"
    );

    // and the localized program still classifies the local COP rules as solver rules
    let analysis = inst0.analysis();
    let classes: Vec<RuleClass> = (0..inst0.program().rules.len())
        .map(|i| analysis.class_of(i))
        .collect();
    assert!(classes.contains(&RuleClass::SolverDerivation));
    assert!(classes.contains(&RuleClass::SolverConstraint));
    assert!(classes.contains(&RuleClass::Regular));
}

#[test]
fn table2_rows_are_consistent_with_compiler_output() {
    let rows = compactness_table();
    assert_eq!(rows.len(), 5);
    // the declarative-vs-imperative gap holds for every program
    for row in &rows {
        assert!(row.generated_loc > row.colog_rules * 30, "{}", row.protocol);
    }
    // and the distributed wireless program is the largest, as in Table 2
    let max = rows.iter().max_by_key(|r| r.generated_loc).unwrap();
    assert!(max.protocol.contains("Wireless") || max.protocol.contains("Follow-the-Sun"));
}
