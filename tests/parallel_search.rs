//! Determinism suite for the parallel search subsystem (PR 7): enabling
//! `SearchConfig::workers` must not change any observable of a solve. The
//! parallel exact engine is pinned against the sequential searcher on random
//! models and on the paper's three grounded use-case COPs (ACloud, wireless
//! channel selection, Follow-the-Sun), and the parallel LNS portfolio must be
//! byte-identical across reruns at a fixed seed.
//!
//! The worker count under test defaults to 4 and can be overridden through
//! the `COLOGNE_TEST_WORKERS` environment variable (the CI matrix runs this
//! suite with `COLOGNE_TEST_WORKERS=4` explicitly).

use std::num::NonZeroUsize;

use proptest::prelude::*;

use cologne::datalog::{NodeId, Value};
use cologne::solver::{Branching, Model, SearchConfig, SearchOutcome, ValueChoice};
use cologne::{
    CologneInstance, ProgramParams, SolveReport, SolverBranching, SolverMode, VarDomain,
};
use cologne_usecases::programs::{ACLOUD_CENTRALIZED, WIRELESS_CENTRALIZED};
use cologne_usecases::{
    build_followsun_deployment, solve_large_acloud, FollowSunConfig, FollowSunWorkload,
    LargeAcloudConfig,
};

/// Worker count exercised by this suite: `COLOGNE_TEST_WORKERS` when set,
/// otherwise 4.
fn test_workers() -> NonZeroUsize {
    std::env::var("COLOGNE_TEST_WORKERS")
        .ok()
        .and_then(|raw| raw.parse().ok())
        .unwrap_or_else(|| NonZeroUsize::new(4).unwrap())
}

/// Worker count the engine records for `test_workers()`: a single worker is
/// routed to the sequential engine, which reports 0.
fn recorded_workers() -> u64 {
    match test_workers().get() {
        1 => 0,
        n => n as u64,
    }
}

/// Assert the observables the parallel engine promises to preserve: the
/// incumbent chain, the winning assignment and objective, completeness, and
/// the solution count. (Node/fail totals intentionally stay out: rejected
/// speculative work is not merged, but sibling-subtree work accepted under a
/// weaker entry bound can legitimately differ from the sequential trace.)
fn assert_outcomes_agree(par: &SearchOutcome, seq: &SearchOutcome, context: &str) {
    assert_eq!(
        par.best_objective, seq.best_objective,
        "{context}: objective"
    );
    assert_eq!(par.best, seq.best, "{context}: best assignment");
    assert_eq!(par.solutions, seq.solutions, "{context}: incumbent chain");
    assert_eq!(par.complete, seq.complete, "{context}: completeness");
    assert_eq!(
        par.stats.solutions, seq.stats.solutions,
        "{context}: solution count"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// On random linear/disequality COPs, under every branching and value
    /// heuristic, `workers = 1` and `workers = COLOGNE_TEST_WORKERS` both
    /// reproduce the sequential incumbent chain, winner and completeness.
    #[test]
    fn random_models_parallel_matches_sequential(
        num_vars in 2usize..6,
        bounds in prop::collection::vec((-4i64..2, 2i64..14), 2..6),
        constraints in prop::collection::vec(
            (prop::collection::vec(-3i64..4, 2..6), -10i64..20, 0u8..4),
            1..6
        ),
        objective_coeffs in prop::collection::vec(-3i64..4, 2..6),
        heuristics in (0u8..3, 0u8..3),
        maximize in prop::bool::ANY,
    ) {
        let mut m = Model::new();
        let vars: Vec<_> = (0..num_vars)
            .map(|i| {
                let (lo, hi) = bounds[i % bounds.len()];
                m.new_var(lo, hi)
            })
            .collect();
        for (coeffs, bound, kind) in &constraints {
            let terms: Vec<(i64, _)> = coeffs
                .iter()
                .zip(vars.iter())
                .map(|(&c, &v)| (c, v))
                .collect();
            match kind % 4 {
                0 => m.linear_le(&terms, *bound),
                1 => m.linear_ge(&terms, *bound),
                2 => m.linear_eq(&terms, *bound),
                _ => m.linear_ne(&terms, *bound),
            }
        }
        let obj_terms: Vec<(i64, _)> = objective_coeffs
            .iter()
            .zip(vars.iter())
            .map(|(&c, &v)| (c, v))
            .collect();
        let obj = m.linear_var(&obj_terms, 0);
        let base = SearchConfig {
            branching: [
                Branching::InputOrder,
                Branching::SmallestDomain,
                Branching::LargestDomain,
            ][heuristics.0 as usize % 3],
            value_choice: [ValueChoice::Min, ValueChoice::Max, ValueChoice::Split]
                [heuristics.1 as usize % 3],
            ..Default::default()
        };
        let solve = |workers: Option<NonZeroUsize>| {
            let cfg = SearchConfig { workers, ..base.clone() };
            if maximize {
                m.maximize(obj, &cfg)
            } else {
                m.minimize(obj, &cfg)
            }
        };
        let sequential = solve(None);
        for workers in [NonZeroUsize::new(1).unwrap(), test_workers()] {
            let par = solve(Some(workers));
            assert_outcomes_agree(&par, &sequential, &format!("workers={workers}"));
        }
    }
}

/// Fingerprint of a pipeline-level solve, with wall-clock time excluded so
/// reruns can be compared byte-for-byte.
fn report_fingerprint(report: &SolveReport) -> impl PartialEq + std::fmt::Debug {
    let mut stats = report.stats.clone();
    stats.elapsed_micros = 0;
    (
        report.feasible,
        report.objective,
        report.proven_optimal,
        stats,
        report.assignments.clone(),
    )
}

/// Run one instance sequentially and one with the worker knob enabled, and
/// assert the pipeline-level reports agree on everything but wall clock and
/// the parallel-only counters.
fn assert_instance_parallel_matches_sequential(
    make: impl Fn(Option<NonZeroUsize>) -> CologneInstance,
    context: &str,
) {
    let mut seq = make(None);
    let mut par = make(Some(test_workers()));
    let rs = seq.invoke_solver().unwrap();
    let rp = par.invoke_solver().unwrap();
    assert_eq!(rp.feasible, rs.feasible, "{context}: feasibility");
    assert_eq!(rp.objective, rs.objective, "{context}: objective");
    assert_eq!(rp.assignments, rs.assignments, "{context}: assignments");
    assert_eq!(
        rp.proven_optimal, rs.proven_optimal,
        "{context}: optimality proof"
    );
    assert_eq!(
        rp.stats.parallel_workers,
        recorded_workers(),
        "{context}: worker count recorded"
    );
    // The same parallel run must also be reproducible wholesale.
    let mut again = make(Some(test_workers()));
    let ra = again.invoke_solver().unwrap();
    assert_eq!(
        report_fingerprint(&ra),
        report_fingerprint(&rp),
        "{context}: parallel rerun determinism"
    );
}

fn acloud_instance(workers: Option<NonZeroUsize>) -> CologneInstance {
    let params = ProgramParams::new()
        .with_var_domain("assign", VarDomain::BOOL)
        .with_solver_branching(SolverBranching::FirstFail)
        .with_solver_max_time(None)
        .with_solver_node_limit(Some(50_000))
        .with_solver_workers(workers);
    let mut inst = CologneInstance::new(NodeId(0), ACLOUD_CENTRALIZED, params).unwrap();
    for (vid, cpu, mem) in [(1, 40, 4), (2, 20, 4), (3, 30, 4), (4, 25, 4)] {
        inst.relation("vm")
            .unwrap()
            .insert(vec![Value::Int(vid), Value::Int(cpu), Value::Int(mem)])
            .unwrap();
    }
    for hid in [10, 11, 12] {
        inst.relation("host")
            .unwrap()
            .insert(vec![Value::Int(hid), Value::Int(0), Value::Int(0)])
            .unwrap();
        inst.relation("hostMemThres")
            .unwrap()
            .insert(vec![Value::Int(hid), Value::Int(8)])
            .unwrap();
    }
    inst
}

#[test]
fn acloud_cop_parallel_matches_sequential() {
    assert_instance_parallel_matches_sequential(acloud_instance, "acloud");
}

fn wireless_instance(workers: Option<NonZeroUsize>) -> CologneInstance {
    let channels = [1i64, 6, 11];
    let params = ProgramParams::new()
        .with_var_domain("assign", VarDomain::new(1, 11))
        .with_constant("F_mindiff", 3)
        .with_solver_branching(SolverBranching::FirstFail)
        .with_solver_max_time(None)
        .with_solver_node_limit(Some(50_000))
        .with_solver_workers(workers);
    let mut inst = CologneInstance::new(NodeId(0), WIRELESS_CENTRALIZED, params).unwrap();
    let mut link = inst.relation("link").unwrap();
    for (a, b) in [(0i64, 1i64), (1, 2), (2, 3)] {
        link.insert(vec![Value::Int(a), Value::Int(b)]).unwrap();
        link.insert(vec![Value::Int(b), Value::Int(a)]).unwrap();
    }
    for n in 0..4i64 {
        inst.relation("numInterface")
            .unwrap()
            .insert(vec![Value::Int(n), Value::Int(2)])
            .unwrap();
    }
    inst.relation("primaryUser")
        .unwrap()
        .insert(vec![Value::Int(1), Value::Int(channels[0])])
        .unwrap();
    inst
}

#[test]
fn wireless_cop_parallel_matches_sequential() {
    assert_instance_parallel_matches_sequential(wireless_instance, "wireless");
}

/// The Follow-the-Sun link-negotiation COP solved on a full deployment: the
/// initiator's solve with `solver_workers` threaded through `SolverSettings`
/// must reproduce the sequential outcome.
#[test]
fn followsun_cop_parallel_matches_sequential() {
    let solve = |workers: Option<NonZeroUsize>| {
        let config = FollowSunConfig {
            data_centers: 3,
            capacity: 30,
            max_initial_allocation: 6,
            solver_node_limit: 20_000,
            seed: 5,
            solver_workers: workers,
            ..FollowSunConfig::default()
        };
        let workload = FollowSunWorkload::generate(&config);
        let mut driver = build_followsun_deployment(&config, &workload);
        let (a, b) = workload.topology.links()[0];
        let (initiator, peer) = (a.max(b), a.min(b));
        driver
            .insert(
                NodeId(initiator),
                "setLink",
                vec![Value::Addr(NodeId(initiator)), Value::Addr(NodeId(peer))],
            )
            .unwrap();
        driver.run_messages_until(cologne::net::SimTime::from_secs(2));
        let inst = driver.instance_mut(NodeId(initiator)).unwrap();
        inst.params_mut().solver_max_time = None;
        let cop = inst.ground_only().unwrap();
        assert!(!cop.is_trivial(), "negotiation must ground a real COP");
        inst.recycle(cop);
        inst.invoke_solver().unwrap()
    };
    let seq = solve(None);
    let par = solve(Some(test_workers()));
    assert_eq!(par.feasible, seq.feasible, "followsun: feasibility");
    assert_eq!(par.objective, seq.objective, "followsun: objective");
    assert_eq!(par.assignments, seq.assignments, "followsun: assignments");
    assert_eq!(
        par.stats.parallel_workers,
        recorded_workers(),
        "followsun: worker count recorded"
    );
}

/// The parallel LNS portfolio on the large ACloud scenario is byte-identical
/// across reruns at a fixed seed (modulo wall-clock time), finds a feasible
/// assignment, and records its portfolio shape in the stats.
#[test]
fn large_acloud_parallel_lns_rerun_is_byte_identical() {
    let config = LargeAcloudConfig {
        vms: 100,
        hosts: 8,
        node_limit: 8_000,
        seed: 23,
        workers: Some(test_workers()),
    };
    let first = solve_large_acloud(&config, SolverMode::Lns(config.lns_params()));
    let second = solve_large_acloud(&config, SolverMode::Lns(config.lns_params()));
    assert!(first.feasible, "portfolio finds a feasible incumbent");
    assert_eq!(first.stats.parallel_workers, recorded_workers());
    if test_workers().get() > 1 {
        assert!(
            first.stats.portfolio_rounds > 0,
            "portfolio rounds recorded"
        );
    }
    assert_eq!(
        report_fingerprint(&first),
        report_fingerprint(&second),
        "same seed, same worker count => byte-identical outcome"
    );
    // The portfolio must stay a sound solver: no worse than the sequential
    // LNS run at the same per-worker seed discipline is not guaranteed, but
    // feasibility of the same COP is.
    let assign = first.table("assign");
    assert_eq!(assign.len(), config.vms * config.hosts);
}
