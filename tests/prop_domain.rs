//! Property tests for the hole-range [`Domain`] representation: every
//! operation is checked against a naive `BTreeSet<i64>` reference model on
//! random operation sequences. The reference treats a domain as an explicit
//! value set; the hole-range version must agree on membership, bounds,
//! `size()` (which is cached, so this also guards the cache bookkeeping) and
//! iteration order after every step, and must report `Err(())` exactly when
//! the reference set would become empty.

use std::collections::BTreeSet;

use cologne_solver::Domain;
use proptest::prelude::*;

/// One random mutation; `a`/`b` are interpreted per op kind.
fn apply(op: u8, a: i64, b: i64, dom: &mut Domain, set: &mut BTreeSet<i64>) -> Result<(), ()> {
    match op % 5 {
        0 => {
            // remove_value(a)
            let expect_err = set.contains(&a) && set.len() == 1;
            let res = dom.remove_value(a);
            assert_eq!(res.is_err(), expect_err, "remove_value({a})");
            if res.is_err() {
                return Err(());
            }
            set.remove(&a);
            Ok(())
        }
        1 => {
            // remove_below(a)
            let expect_err = set.iter().all(|&v| v < a);
            let res = dom.remove_below(a);
            assert_eq!(res.is_err(), expect_err, "remove_below({a})");
            if res.is_err() {
                return Err(());
            }
            set.retain(|&v| v >= a);
            Ok(())
        }
        2 => {
            // remove_above(a)
            let expect_err = set.iter().all(|&v| v > a);
            let res = dom.remove_above(a);
            assert_eq!(res.is_err(), expect_err, "remove_above({a})");
            if res.is_err() {
                return Err(());
            }
            set.retain(|&v| v <= a);
            Ok(())
        }
        3 => {
            // intersect_bounds(min(a,b), max(a,b))
            let (lo, hi) = (a.min(b), a.max(b));
            let expect_err = !set.iter().any(|&v| (lo..=hi).contains(&v));
            let res = dom.intersect_bounds(lo, hi);
            assert_eq!(res.is_err(), expect_err, "intersect_bounds({lo}, {hi})");
            if res.is_err() {
                return Err(());
            }
            set.retain(|&v| (lo..=hi).contains(&v));
            Ok(())
        }
        _ => {
            // assign(a)
            let expect_err = !set.contains(&a);
            let res = dom.assign(a);
            assert_eq!(res.is_err(), expect_err, "assign({a})");
            if res.is_err() {
                // A failed assign leaves the domain untouched; keep going.
                return Ok(());
            }
            set.retain(|&v| v == a);
            Ok(())
        }
    }
}

fn assert_matches_reference(dom: &Domain, set: &BTreeSet<i64>, context: &str) {
    assert!(!set.is_empty(), "{context}: reference emptied without Err");
    assert_eq!(dom.size() as usize, set.len(), "{context}: size");
    assert_eq!(&dom.min(), set.first().unwrap(), "{context}: min");
    assert_eq!(&dom.max(), set.last().unwrap(), "{context}: max");
    let values: Vec<i64> = dom.iter().collect();
    let reference: Vec<i64> = set.iter().copied().collect();
    assert_eq!(values, reference, "{context}: value set");
    for v in dom.min() - 1..=dom.max() + 1 {
        assert_eq!(
            dom.contains(v),
            set.contains(&v),
            "{context}: contains({v})"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Random op sequences on an interval domain stay in lockstep with the
    /// reference set, including the exact point where they become empty.
    #[test]
    fn interval_domain_matches_reference_model(
        lo in -30i64..10,
        span in 0i64..40,
        ops in prop::collection::vec((0u8..5, -35i64..35, -35i64..35), 1..40),
    ) {
        let hi = lo + span;
        let mut dom = Domain::new(lo, hi);
        let mut set: BTreeSet<i64> = (lo..=hi).collect();
        for (i, &(op, a, b)) in ops.iter().enumerate() {
            if apply(op, a, b, &mut dom, &mut set).is_err() {
                return Ok(()); // wiped out, exactly when the reference said so
            }
            assert_matches_reference(&dom, &set, &format!("op {i} ({op},{a},{b})"));
        }
    }

    /// `from_values` builds the same set the reference holds, for arbitrary
    /// (unsorted, duplicated, sparse) inputs — and subsequent ops keep
    /// agreeing, exercising hole-range merging around pre-existing gaps.
    #[test]
    fn from_values_domain_matches_reference_model(
        values in prop::collection::vec(-1000i64..1000, 1..25),
        ops in prop::collection::vec((0u8..5, -1000i64..1000, -1000i64..1000), 0..25),
    ) {
        let mut dom = Domain::from_values(&values);
        let mut set: BTreeSet<i64> = values.iter().copied().collect();
        assert_matches_reference(&dom, &set, "from_values");
        for (i, &(op, a, b)) in ops.iter().enumerate() {
            if apply(op, a, b, &mut dom, &mut set).is_err() {
                return Ok(());
            }
            assert_matches_reference(&dom, &set, &format!("op {i} ({op},{a},{b})"));
        }
    }

    /// Sparse wide-range domains stay compact: `size()` tracks the value
    /// count, never the bound span.
    #[test]
    fn sparse_wide_domains_report_exact_size(
        values in prop::collection::vec(-1_000_000_000i64..1_000_000_000, 1..12),
    ) {
        let dom = Domain::from_values(&values);
        let set: BTreeSet<i64> = values.iter().copied().collect();
        prop_assert_eq!(dom.size() as usize, set.len());
        prop_assert_eq!(dom.iter().count(), set.len());
    }
}
