//! Equivalence suite for the compiled-plan Datalog engine.
//!
//! `cologne_datalog::Engine` (interned values, lazy hash indexes, compiled
//! rule plans) must be observationally identical to
//! `cologne_datalog::ReferenceEngine` (the original interpreted engine,
//! kept as the executable specification): same fixpoint tables, same
//! [`DeltaSummary`], and the same outbox contents (compared as a multiset —
//! emission order within one firing is unspecified).
//!
//! The suite drives both engines through identical rule installs and
//! insert/delete scripts: fixed programs covering recursion, aggregates,
//! filters/assignments and located heads; randomly generated rule sets; and
//! the regular rules of every shipped paper program (ACloud, Follow-the-Sun,
//! wireless channel selection).

use proptest::prelude::*;

use cologne::translate::rule_to_datalog;
use cologne_colog::{analyze, parse_program, ProgramParams, RuleClass, SchemaCatalog};
use cologne_datalog::{
    AggFunc, Atom, BodyItem, DeltaSummary, Engine, Expr, Head, HeadArg, NodeId, Op,
    ReferenceEngine, RemoteTuple, Rule, Term, Tuple, Value, ValueKind,
};
use cologne_usecases::programs::table2_programs;

/// One step of a test script applied to both engines.
#[derive(Debug, Clone)]
enum ScriptOp {
    Insert(&'static str, Tuple),
    Delete(&'static str, Tuple),
    Run,
}

fn both(rules: &[Rule]) -> (Engine, ReferenceEngine) {
    let mut fast = Engine::new(NodeId(0));
    let mut refe = ReferenceEngine::new(NodeId(0));
    fast.add_rules(rules.iter().cloned());
    refe.add_rules(rules.iter().cloned());
    (fast, refe)
}

/// Outbox as a canonically ordered multiset.
fn sorted_outbox(outbox: Vec<RemoteTuple>) -> Vec<(u32, String, Tuple, bool)> {
    let mut v: Vec<(u32, String, Tuple, bool)> = outbox
        .into_iter()
        .map(|r| (r.dest.0, r.relation, r.tuple, r.insert))
        .collect();
    v.sort();
    v
}

/// Run both engines to fixpoint and compare every observable: tables (for
/// the union of relation names), delta summaries, and outbox multisets.
fn compare_observables(fast: &mut Engine, refe: &mut ReferenceEngine) -> Result<(), TestCaseError> {
    fast.run();
    refe.run();
    let fast_delta: DeltaSummary = fast.take_delta_summary();
    let ref_delta: DeltaSummary = refe.take_delta_summary();
    prop_assert_eq!(fast_delta, ref_delta);
    prop_assert_eq!(
        sorted_outbox(fast.take_outbox()),
        sorted_outbox(refe.take_outbox())
    );
    let mut names = fast.relation_names();
    names.extend(refe.relation_names());
    names.sort();
    names.dedup();
    for name in &names {
        let ft = fast.tuples(name);
        let rt = refe.tuples(name);
        prop_assert!(
            ft == rt,
            "relation '{}' diverged: {:?} != {:?}",
            name,
            ft,
            rt
        );
        prop_assert!(
            fast.relation_len(name) == ft.len(),
            "relation_len('{}') disagrees with tuples()",
            name
        );
        prop_assert_eq!(
            fast.contains(name, &ft.first().cloned().unwrap_or_default()),
            {
                let probe = rt.first().cloned().unwrap_or_default();
                refe.contains(name, &probe)
            }
        );
    }
    Ok(())
}

fn apply_script(
    fast: &mut Engine,
    refe: &mut ReferenceEngine,
    script: &[ScriptOp],
) -> Result<(), TestCaseError> {
    for op in script {
        match op {
            ScriptOp::Insert(rel, t) => {
                fast.insert(rel, t.clone());
                refe.insert(rel, t.clone());
            }
            ScriptOp::Delete(rel, t) => {
                fast.delete(rel, t.clone());
                refe.delete(rel, t.clone());
            }
            ScriptOp::Run => compare_observables(fast, refe)?,
        }
    }
    compare_observables(fast, refe)
}

/// Turn sampled op seeds into a script over base relations.
fn script_from_seeds(
    rels: &[&'static str],
    seeds: &[(u8, i64, i64, bool)],
    values: impl Fn(i64, i64) -> Tuple,
) -> Vec<ScriptOp> {
    let mut script = Vec::with_capacity(seeds.len() + 1);
    for &(sel, a, b, run_after) in seeds {
        let rel = rels[sel as usize % rels.len()];
        let tuple = values(a, b);
        if sel as usize / rels.len() % 2 == 0 {
            script.push(ScriptOp::Insert(rel, tuple));
        } else {
            script.push(ScriptOp::Delete(rel, tuple));
        }
        if run_after {
            script.push(ScriptOp::Run);
        }
    }
    script
}

/// path(X,Y) <- link(X,Y);  path(X,Z) <- link(X,Y), path(Y,Z)
fn transitive_closure_rules() -> Vec<Rule> {
    vec![
        Rule::new(
            "r1",
            Head::simple("path", vec![Term::var("X"), Term::var("Y")]),
            vec![BodyItem::Atom(Atom::new(
                "link",
                vec![Term::var("X"), Term::var("Y")],
            ))],
        ),
        Rule::new(
            "r2",
            Head::simple("path", vec![Term::var("X"), Term::var("Z")]),
            vec![
                BodyItem::Atom(Atom::new("link", vec![Term::var("X"), Term::var("Y")])),
                BodyItem::Atom(Atom::new("path", vec![Term::var("Y"), Term::var("Z")])),
            ],
        ),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Recursive rules: both engines maintain the same transitive closure
    /// under arbitrary edge insert/delete sequences.
    ///
    /// Each op is followed by a `run()`: batching inserts and deletes of
    /// cyclic graphs into one run can livelock counting-based PSN (a known
    /// limitation of the counting algorithm on recursive rules, shared by
    /// both engines), so the equivalence property is stated per delta.
    #[test]
    fn transitive_closure_equivalence(
        seeds in prop::collection::vec((0u8..4, 0i64..5, 0i64..5, prop::bool::ANY), 1..40),
    ) {
        let rules = transitive_closure_rules();
        let (mut fast, mut refe) = both(&rules);
        let seeds: Vec<(u8, i64, i64, bool)> =
            seeds.into_iter().map(|(s, a, b, _)| (s, a, b, true)).collect();
        let script = script_from_seeds(&["link"], &seeds, |a, b| {
            vec![Value::Int(a), Value::Int(b)]
        });
        apply_script(&mut fast, &mut refe, &script)?;
    }

    /// Aggregates (SUM grouped by key) feeding a second filtered rule:
    /// recompute-and-diff must agree between the engines.
    #[test]
    fn aggregate_chain_equivalence(
        seeds in prop::collection::vec((0u8..4, 0i64..4, 0i64..6, prop::bool::ANY), 1..30),
    ) {
        let rules = vec![
            Rule::new(
                "tot",
                Head {
                    relation: "tot".into(),
                    args: vec![
                        HeadArg::Term(Term::var("X")),
                        HeadArg::Agg(AggFunc::Sum, "Y".into()),
                    ],
                    located: false,
                },
                vec![BodyItem::Atom(Atom::new(
                    "e",
                    vec![Term::var("X"), Term::var("Y")],
                ))],
            ),
            Rule::new(
                "big",
                Head::simple("big", vec![Term::var("X")]),
                vec![
                    BodyItem::Atom(Atom::new("tot", vec![Term::var("X"), Term::var("S")])),
                    BodyItem::Filter(Expr::BinOp(
                        Op::Ge,
                        Box::new(Expr::Term(Term::var("S"))),
                        Box::new(Expr::Term(Term::Const(Value::Int(4)))),
                    )),
                ],
            ),
        ];
        let (mut fast, mut refe) = both(&rules);
        let script = script_from_seeds(&["e"], &seeds, |a, b| {
            vec![Value::Int(a), Value::Int(b)]
        });
        apply_script(&mut fast, &mut refe, &script)?;
    }

    /// Filters, assignments and string constants in rule bodies.
    #[test]
    fn filter_assign_equivalence(
        seeds in prop::collection::vec((0u8..4, 0i64..5, 0i64..8, prop::bool::ANY), 1..30),
    ) {
        let rules = vec![Rule::new(
            "p",
            Head::simple("p", vec![Term::var("X"), Term::var("Z")]),
            vec![
                BodyItem::Atom(Atom::new("e", vec![Term::var("X"), Term::var("Y")])),
                BodyItem::Filter(Expr::BinOp(
                    Op::Lt,
                    Box::new(Expr::Term(Term::var("X"))),
                    Box::new(Expr::Term(Term::var("Y"))),
                )),
                BodyItem::Assign(
                    "Z".into(),
                    Expr::BinOp(
                        Op::Add,
                        Box::new(Expr::Term(Term::var("X"))),
                        Box::new(Expr::Term(Term::var("Y"))),
                    ),
                ),
            ],
        )];
        let (mut fast, mut refe) = both(&rules);
        // Mix string payloads into the second column to exercise interning.
        let strs = ["red", "green", "blue"];
        let script = script_from_seeds(&["e"], &seeds, |a, b| {
            if b >= 5 {
                vec![Value::Int(a), Value::Str(strs[(b - 5) as usize].into())]
            } else {
                vec![Value::Int(a), Value::Int(b)]
            }
        });
        apply_script(&mut fast, &mut refe, &script)?;
    }

    /// Located heads: tuples addressed to other nodes fill the outbox
    /// identically (as a multiset) in both engines.
    #[test]
    fn located_head_equivalence(
        seeds in prop::collection::vec((0u8..4, 0i64..3, 0i64..5, prop::bool::ANY), 1..30),
    ) {
        let rules = vec![Rule::new(
            "ship",
            Head {
                relation: "ship".into(),
                args: vec![HeadArg::Term(Term::var("D")), HeadArg::Term(Term::var("X"))],
                located: true,
            },
            vec![BodyItem::Atom(Atom::new(
                "pair",
                vec![Term::var("D"), Term::var("X")],
            ))],
        )];
        let (mut fast, mut refe) = both(&rules);
        let script = script_from_seeds(&["pair"], &seeds, |a, b| {
            vec![Value::Addr(NodeId(a as u32)), Value::Int(b)]
        });
        apply_script(&mut fast, &mut refe, &script)?;
    }

    /// Randomly generated (non-recursive) rule sets: one layer of rules for
    /// `p` over base relations, one layer for `q` over base relations and
    /// `p`, with random head shapes, constants, filters and assignments.
    #[test]
    fn random_rules_equivalence(
        rule_seeds in prop::collection::vec((0u8..6, 0u8..6, 0u8..6, 0u8..5, 0u8..5), 1..5),
        op_seeds in prop::collection::vec((0u8..8, 0i64..4, 0i64..4, prop::bool::ANY), 1..30),
    ) {
        let vars = ["X", "Y", "Z", "W"];
        let mut rules = Vec::new();
        for (i, &(s0, s1, s2, s3, s4)) in rule_seeds.iter().enumerate() {
            let layer2 = i % 2 == 1;
            let head_rel = if layer2 { "q" } else { "p" };
            // Body: one or two atoms over the allowed layer relations.
            let base = if layer2 {
                ["e0", "e1", "p"]
            } else {
                ["e0", "e1", "e0"]
            };
            let atom = |sel: u8, v0: &str, v1: &str| {
                BodyItem::Atom(Atom::new(
                    base[sel as usize % base.len()],
                    vec![Term::var(v0), Term::var(v1)],
                ))
            };
            let mut body = vec![atom(s0, vars[s3 as usize % 4], vars[s4 as usize % 4])];
            if s1 % 2 == 0 {
                // Second atom shares one variable with the first (or not —
                // cross products are legal too).
                body.push(atom(s1 / 2, vars[s4 as usize % 4], vars[(s3 as usize + 1) % 4]));
            }
            match s2 {
                0 => body.push(BodyItem::Filter(Expr::BinOp(
                    Op::Ne,
                    Box::new(Expr::Term(Term::var(vars[s3 as usize % 4]))),
                    Box::new(Expr::Term(Term::Const(Value::Int(1)))),
                ))),
                1 => body.push(BodyItem::Assign(
                    "A".into(),
                    Expr::BinOp(
                        Op::Add,
                        Box::new(Expr::Term(Term::var(vars[s3 as usize % 4]))),
                        Box::new(Expr::Term(Term::Const(Value::Int(10)))),
                    ),
                )),
                2 => body.push(BodyItem::Filter(Expr::BinOp(
                    Op::Lt,
                    Box::new(Expr::Term(Term::var(vars[s3 as usize % 4]))),
                    Box::new(Expr::Term(Term::var(vars[s4 as usize % 4]))),
                ))),
                _ => {}
            }
            // Head columns: variables (possibly unbound in the body — the
            // engines must agree on dropped instantiations too), the
            // assigned variable, or a constant.
            let head_col = |sel: u8| -> Term {
                match sel % 4 {
                    0 => Term::var(vars[s3 as usize % 4]),
                    1 => Term::var(vars[(s4 as usize + 1) % 4]),
                    2 => Term::var("A"),
                    _ => Term::Const(Value::Int(7)),
                }
            };
            rules.push(Rule::new(
                &format!("g{i}"),
                Head::simple(head_rel, vec![head_col(s0 + s2), head_col(s1 + s4)]),
                body,
            ));
        }
        let (mut fast, mut refe) = both(&rules);
        let script = script_from_seeds(&["e0", "e1"], &op_seeds, |a, b| {
            vec![Value::Int(a), Value::Int(b)]
        });
        apply_script(&mut fast, &mut refe, &script)?;
    }
}

/// The regular (non-solver) rules of every shipped paper program, pinned:
/// lower them through the real compiler pipeline, feed synthetic facts for
/// every base relation, and require both engines to agree on every table.
#[test]
fn paper_programs_equivalence_pins() {
    let params = ProgramParams::new().with_constant("max_migrates", 2);
    let mut pinned_programs = 0usize;
    for (name, source) in table2_programs() {
        let program = parse_program(&source).unwrap_or_else(|e| panic!("{name}: parse: {e}"));
        let analysis = analyze(&program).unwrap_or_else(|e| panic!("{name}: analysis: {e}"));
        let catalog = SchemaCatalog::derive(&program, &analysis);

        let mut rules = Vec::new();
        for (i, rule) in program.rules.iter().enumerate() {
            if analysis.class_of(i) != RuleClass::Regular {
                continue;
            }
            match rule_to_datalog(rule, &params) {
                Ok(r) => rules.push(r),
                Err(e) => panic!("{name}: lowering regular rule {i}: {e}"),
            }
        }
        if rules.is_empty() {
            // Some centralized variants are pure solver programs with no
            // regular rules (e.g. the wireless channel-selection COP).
            continue;
        }
        pinned_programs += 1;

        let mut fast = Engine::new(NodeId(0));
        let mut refe = ReferenceEngine::new(NodeId(0));
        fast.add_rules(rules.iter().cloned());
        refe.add_rules(rules.iter().cloned());

        // Base relations: mentioned in rule bodies, not derived by any
        // lowered head and not materialized by the solver's var decls.
        let heads: std::collections::HashSet<&str> =
            rules.iter().map(|r| r.head.relation.as_str()).collect();
        let mut base: Vec<&str> = rules
            .iter()
            .flat_map(|r| r.body_relations())
            .filter(|rel| !heads.contains(rel))
            .filter(|rel| catalog.get(rel).map(|s| !s.declared_by_var).unwrap_or(true))
            .collect();
        base.sort_unstable();
        base.dedup();
        assert!(!base.is_empty(), "{name}: no base relations found");

        for (r_idx, rel) in base.iter().enumerate() {
            let schema = catalog.get(rel);
            let arity = schema.map(|s| s.arity).unwrap_or(2);
            for k in 0..4i64 {
                let tuple: Tuple = (0..arity)
                    .map(|col| {
                        let kind = schema
                            .map(|s| s.columns[col])
                            .unwrap_or(cologne_datalog::ValueKind::Any);
                        match kind {
                            ValueKind::Addr => Value::Addr(NodeId(((k + col as i64) % 3) as u32)),
                            _ => Value::Int((r_idx as i64 * 5 + k + col as i64) % 7),
                        }
                    })
                    .collect();
                fast.insert(rel, tuple.clone());
                refe.insert(rel, tuple);
            }
        }

        fast.run();
        refe.run();
        assert_eq!(
            fast.take_delta_summary(),
            refe.take_delta_summary(),
            "{name}: delta summaries diverged"
        );
        assert_eq!(
            sorted_outbox(fast.take_outbox()),
            sorted_outbox(refe.take_outbox()),
            "{name}: outboxes diverged"
        );
        let mut names = fast.relation_names();
        names.extend(refe.relation_names());
        names.sort();
        names.dedup();
        for rel in &names {
            assert_eq!(
                fast.tuples(rel),
                refe.tuples(rel),
                "{name}: relation '{rel}' diverged"
            );
        }
    }
    assert!(
        pinned_programs >= 3,
        "expected at least three programs with regular rules, got {pinned_programs}"
    );
}

/// Wire-path regression: two engines intern the same strings in different
/// orders (so their internal string ids disagree), then exchange located
/// tuples through the outbox. Because `RemoteTuple` carries resolved values
/// and the receiver re-interns on ingest, both engines must end up with
/// identical tables.
#[test]
fn remote_tuples_reintern_across_engines() {
    let ship_rule = |name: &str| {
        Rule::new(
            name,
            Head {
                relation: "inventory".into(),
                args: vec![
                    HeadArg::Term(Term::var("D")),
                    HeadArg::Term(Term::var("Item")),
                ],
                located: true,
            },
            vec![BodyItem::Atom(Atom::new(
                "stock",
                vec![Term::var("D"), Term::var("Item")],
            ))],
        )
    };
    let mut a = Engine::new(NodeId(0));
    let mut b = Engine::new(NodeId(1));
    a.add_rule(ship_rule("ship_a"));
    b.add_rule(ship_rule("ship_b"));

    // Skew the interners: each engine sees the shared strings in a
    // different order (and engine A interns extra strings first).
    let items = ["anvil", "barrel", "crate", "drum"];
    for extra in ["padding-1", "padding-2", "padding-3"] {
        a.insert("scratch", vec![Value::Str(extra.into())]);
    }
    for item in items.iter() {
        a.insert(
            "stock",
            vec![Value::Addr(NodeId(1)), Value::Str((*item).into())],
        );
    }
    for item in items.iter().rev() {
        b.insert(
            "stock",
            vec![Value::Addr(NodeId(0)), Value::Str((*item).into())],
        );
    }
    a.run();
    b.run();

    // Exchange outboxes, routing each remote tuple to its destination.
    let deliver = |engine: &mut Engine, msgs: Vec<RemoteTuple>, expect_dest: u32| {
        for msg in msgs {
            assert_eq!(msg.dest.0, expect_dest);
            assert!(msg.insert);
            if msg.insert {
                engine.insert(&msg.relation, msg.tuple);
            } else {
                engine.delete(&msg.relation, msg.tuple);
            }
        }
    };
    let from_a = a.take_outbox();
    let from_b = b.take_outbox();
    assert_eq!(from_a.len(), items.len());
    assert_eq!(from_b.len(), items.len());
    deliver(&mut b, from_a, 1);
    deliver(&mut a, from_b, 0);
    a.run();
    b.run();

    // Each engine now holds the inventory shipped by its peer; despite the
    // different intern orders, the public tables agree exactly.
    let at_a = a.tuples("inventory");
    let at_b = b.tuples("inventory");
    assert_eq!(at_a.len(), items.len());
    assert_eq!(at_b.len(), items.len());
    let strip: fn(&Tuple) -> Value = |t| t[1].clone();
    let mut names_a: Vec<Value> = at_a.iter().map(strip).collect();
    let mut names_b: Vec<Value> = at_b.iter().map(strip).collect();
    names_a.sort();
    names_b.sort();
    assert_eq!(names_a, names_b);
    // And the reference engine ingests the very same wire tuples to the
    // very same table.
    let mut r = ReferenceEngine::new(NodeId(0));
    for t in &at_a {
        r.insert("inventory", t.clone());
    }
    r.run();
    assert_eq!(r.tuples("inventory"), at_a);
}
