//! Reconvergence under a hostile network: seeded loss / duplication /
//! reorder / partition / crash-rejoin schedules must not change *what* the
//! distributed protocols compute — only how the network got there. Each test
//! compares a hostile execution against the fault-free (quiet-plan) run of
//! the same workload and pins that seeded hostile executions are themselves
//! byte-identical across reruns.
//!
//! The fault seed can be swept from CI via `COLOGNE_TEST_FAULT_SEED` (the
//! fault-matrix job runs seeds 1–3); it defaults to 1.

use cologne::net::{FaultPlan, LinkFaults, SimTime};
use cologne_usecases::wireless::{networked_distributed_assignment, MeshNetwork, WirelessConfig};
use cologne_usecases::{run_followsun, FollowSunConfig};

fn fault_seed() -> u64 {
    std::env::var("COLOGNE_TEST_FAULT_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1)
}

/// Loss + duplication + reordering jitter on every link, plus one node that
/// crashes mid-negotiation and rejoins a few seconds later.
fn hostile_plan(seed: u64, crash_node: u32) -> FaultPlan {
    FaultPlan::seeded(seed)
        .link_faults(LinkFaults {
            loss: 0.15,
            duplicate: 0.10,
            jitter_us: 20_000,
        })
        .crash(crash_node, SimTime::from_secs(3), SimTime::from_secs(9))
}

#[test]
fn wireless_negotiation_reconverges_under_hostile_network() {
    let config = WirelessConfig::tiny();
    let mesh = MeshNetwork::generate(&config);
    // crash the centre node of the 3x3 grid: it participates in 4 links
    let plan = hostile_plan(fault_seed(), 4);

    let quiet = networked_distributed_assignment(&mesh, &config.channels, FaultPlan::default());
    let hostile = networked_distributed_assignment(&mesh, &config.channels, plan);

    assert_eq!(
        quiet.assignment, hostile.assignment,
        "hostile run must reach the fault-free fixpoint assignment"
    );
    // The network genuinely misbehaved on the way there…
    assert!(hostile.delivery.retransmits > 0, "loss forces retransmits");
    assert!(
        hostile.delivery.duplicates_dropped > 0,
        "duplication is deduplicated at the receivers"
    );
    assert_eq!(hostile.delivery.crashes, 1);
    assert_eq!(hostile.delivery.rejoins, 1);
    assert!(
        hostile.delivery.resync_tuples > 0,
        "the rejoining node re-syncs neighbour state through ingest"
    );
    assert_eq!(hostile.crash_log.len(), 2, "one down + one up event");
    let dropped: u64 = hostile.traffic.values().map(|t| t.messages_dropped).sum();
    assert!(dropped > 0, "lost messages are counted at the senders");
    // …while the quiet run never needed the machinery.
    assert_eq!(quiet.delivery.retransmits, 0);
    assert_eq!(quiet.delivery.crashes, 0);
}

#[test]
fn seeded_hostile_wireless_runs_are_byte_identical() {
    let config = WirelessConfig::tiny();
    let mesh = MeshNetwork::generate(&config);
    let seed = fault_seed();
    let first = networked_distributed_assignment(&mesh, &config.channels, hostile_plan(seed, 4));
    let second = networked_distributed_assignment(&mesh, &config.channels, hostile_plan(seed, 4));
    assert_eq!(first.assignment, second.assignment);
    assert_eq!(first.delivery, second.delivery);
    assert_eq!(first.traffic, second.traffic);
    assert_eq!(first.crash_log, second.crash_log);
    assert_eq!(first.passes, second.passes);
    // A different seed draws a different schedule (traffic will differ), but
    // the protocol still reconverges to the same assignment.
    let other = networked_distributed_assignment(
        &mesh,
        &config.channels,
        hostile_plan(seed.wrapping_add(1), 4),
    );
    assert_eq!(first.assignment, other.assignment);
}

fn followsun_config(plan: Option<FaultPlan>) -> FollowSunConfig {
    FollowSunConfig {
        data_centers: 3,
        solver_node_limit: 5_000,
        ..Default::default()
    }
    .with_faults(plan)
}

trait WithFaults {
    fn with_faults(self, plan: Option<FaultPlan>) -> Self;
}
impl WithFaults for FollowSunConfig {
    fn with_faults(mut self, plan: Option<FaultPlan>) -> Self {
        self.fault_plan = plan;
        self
    }
}

#[test]
fn followsun_negotiation_reconverges_under_hostile_network() {
    // Fault-free baseline = the quiet plan: same at-least-once delivery
    // path and deterministic (uncapped) solves, no faults injected.
    let quiet = run_followsun(&followsun_config(Some(FaultPlan::default())));
    let hostile = run_followsun(&followsun_config(Some(hostile_plan(fault_seed(), 1))));

    assert_eq!(
        hostile.final_cost, quiet.final_cost,
        "hostile run must converge to the fault-free allocation cost"
    );
    assert_eq!(hostile.migrated_vms, quiet.migrated_vms);
    assert_eq!(hostile.initial_cost, quiet.initial_cost);
    assert_eq!(hostile.solver_invocations, quiet.solver_invocations);
    assert!(
        quiet.final_cost <= quiet.initial_cost,
        "negotiation never worsens the allocation"
    );
}

#[test]
fn seeded_hostile_followsun_runs_are_byte_identical() {
    let seed = fault_seed();
    let first = run_followsun(&followsun_config(Some(hostile_plan(seed, 1))));
    let second = run_followsun(&followsun_config(Some(hostile_plan(seed, 1))));
    // The whole outcome — cost series time stamps, overhead, solver search
    // counters — must replay exactly under the same fault seed. Only the
    // wall-clock `elapsed_micros` of the solver stats is measurement, not
    // computation.
    let digest = |o: &cologne_usecases::FollowSunOutcome| {
        (
            o.cost_series
                .iter()
                .map(|p| (p.time_secs.to_bits(), p.normalized_cost.to_bits()))
                .collect::<Vec<_>>(),
            o.per_node_overhead_kbps.to_bits(),
            o.convergence_secs.to_bits(),
            o.migrated_vms,
            o.initial_cost,
            o.final_cost,
            o.solver_invocations,
            (
                o.solver_stats.nodes,
                o.solver_stats.fails,
                o.solver_stats.propagations,
                o.solver_stats.solutions,
                o.solver_stats.max_depth,
            ),
        )
    };
    assert_eq!(digest(&first), digest(&second));
}
