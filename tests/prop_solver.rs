//! Property-based tests for the constraint solver: solutions returned by the
//! search always satisfy every posted constraint, optimization never returns
//! a worse objective than any feasible assignment found by brute force, and
//! domain operations preserve set semantics.

use proptest::prelude::*;

use cologne_solver::{
    solve_reference, Branching, Domain, Model, Objective, SearchConfig, ValueChoice,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Domain bound/removal operations behave like operations on an explicit
    /// value set.
    #[test]
    fn domain_matches_reference_set(
        lo in -20i64..0,
        hi in 1i64..20,
        removals in prop::collection::vec(-25i64..25, 0..12),
        below in -25i64..25,
        above in -25i64..25,
    ) {
        let mut dom = Domain::new(lo, hi);
        let mut reference: std::collections::BTreeSet<i64> = (lo..=hi).collect();
        for r in &removals {
            let res = dom.remove_value(*r);
            if reference.contains(r) && reference.len() == 1 {
                prop_assert!(res.is_err());
                return Ok(());
            }
            reference.remove(r);
        }
        if dom.remove_below(below).is_err() {
            prop_assert!(reference.iter().all(|&v| v < below));
            return Ok(());
        }
        reference.retain(|&v| v >= below);
        if dom.remove_above(above).is_err() {
            prop_assert!(reference.iter().all(|&v| v > above));
            return Ok(());
        }
        reference.retain(|&v| v <= above);
        let dom_values: Vec<i64> = dom.iter().collect();
        let ref_values: Vec<i64> = reference.into_iter().collect();
        prop_assert_eq!(dom_values, ref_values);
    }

    /// Every solution of a random linear satisfaction model satisfies all of
    /// its constraints (checked through the propagators' own `check`).
    #[test]
    fn solutions_satisfy_all_constraints(
        num_vars in 2usize..5,
        bounds in prop::collection::vec((0i64..4, 4i64..9), 2..5),
        constraints in prop::collection::vec(
            (prop::collection::vec(-3i64..4, 2..5), -10i64..20, 0u8..3),
            1..6
        ),
    ) {
        let mut m = Model::new();
        let vars: Vec<_> = (0..num_vars)
            .map(|i| {
                let (lo, hi) = bounds[i % bounds.len()];
                m.new_var(lo, hi)
            })
            .collect();
        for (coeffs, bound, kind) in &constraints {
            let terms: Vec<(i64, _)> = coeffs
                .iter()
                .zip(vars.iter())
                .map(|(&c, &v)| (c, v))
                .collect();
            match kind % 3 {
                0 => m.linear_le(&terms, *bound),
                1 => m.linear_ge(&terms, *bound),
                _ => m.linear_ne(&terms, *bound),
            }
        }
        let cfg = SearchConfig { max_solutions: Some(20), ..Default::default() };
        let out = m.solve_all(&cfg);
        for sol in &out.solutions {
            for p in m.propagators() {
                prop_assert!(p.check(&|v| sol.value(v)), "constraint {} violated", p.name());
            }
        }
    }

    /// Branch-and-bound minimization never reports an objective worse than
    /// the best assignment found by exhaustive enumeration on small models.
    #[test]
    fn minimization_is_no_worse_than_enumeration(
        d1 in 0i64..4,
        d2 in 0i64..4,
        c1 in -3i64..4,
        c2 in -3i64..4,
        cap in 0i64..8,
    ) {
        let mut m = Model::new();
        let x = m.new_var(0, d1 + 1);
        let y = m.new_var(0, d2 + 1);
        m.linear_le(&[(1, x), (1, y)], cap);
        let obj = m.linear_var(&[(c1, x), (c2, y)], 0);
        let out = m.minimize(obj, &SearchConfig::default());

        // brute force
        let mut best: Option<i64> = None;
        for xv in 0..=(d1 + 1) {
            for yv in 0..=(d2 + 1) {
                if xv + yv <= cap {
                    let v = c1 * xv + c2 * yv;
                    best = Some(best.map_or(v, |b: i64| b.min(v)));
                }
            }
        }
        match (out.best_objective, best) {
            (Some(found), Some(expected)) => prop_assert_eq!(found, expected),
            (None, None) => {}
            (found, expected) => prop_assert!(false, "solver {found:?} vs brute force {expected:?}"),
        }
    }

    /// The trail-based searcher is behaviorally identical to the retained
    /// copy-on-branch reference implementation: on random linear /
    /// disequality models, under every heuristic combination, both must
    /// produce the same best objective, the same solution/incumbent
    /// sequence, and the same node, fail and depth counts.
    #[test]
    fn trail_searcher_matches_cloning_reference(
        num_vars in 2usize..5,
        bounds in prop::collection::vec((-4i64..2, 2i64..14), 2..5),
        constraints in prop::collection::vec(
            (prop::collection::vec(-3i64..4, 2..5), -10i64..20, 0u8..4),
            1..6
        ),
        objective_coeffs in prop::collection::vec(-3i64..4, 2..5),
        heuristics in (0u8..3, 0u8..3, 0u8..3),
        maximize in prop::bool::ANY,
    ) {
        let build = || {
            let mut m = Model::new();
            let vars: Vec<_> = (0..num_vars)
                .map(|i| {
                    let (lo, hi) = bounds[i % bounds.len()];
                    m.new_var(lo, hi)
                })
                .collect();
            for (coeffs, bound, kind) in &constraints {
                let terms: Vec<(i64, _)> = coeffs
                    .iter()
                    .zip(vars.iter())
                    .map(|(&c, &v)| (c, v))
                    .collect();
                match kind % 4 {
                    0 => m.linear_le(&terms, *bound),
                    1 => m.linear_ge(&terms, *bound),
                    2 => m.linear_eq(&terms, *bound),
                    _ => m.linear_ne(&terms, *bound),
                }
            }
            let obj_terms: Vec<(i64, _)> = objective_coeffs
                .iter()
                .zip(vars.iter())
                .map(|(&c, &v)| (c, v))
                .collect();
            let obj = m.linear_var(&obj_terms, 0);
            (m, obj)
        };
        let (m, obj) = build();
        let cfg = SearchConfig {
            branching: [
                Branching::InputOrder,
                Branching::SmallestDomain,
                Branching::LargestDomain,
            ][heuristics.0 as usize % 3],
            value_choice: [
                ValueChoice::Min,
                ValueChoice::Max,
                ValueChoice::Split,
                ValueChoice::ClosestToZero,
            ][heuristics.1 as usize % 4],
            split_threshold: [None, Some(4), Some(16)][heuristics.2 as usize % 3],
            ..Default::default()
        };
        let objective = if maximize {
            Objective::Maximize(obj)
        } else {
            Objective::Minimize(obj)
        };
        let trail = if maximize {
            m.maximize(obj, &cfg)
        } else {
            m.minimize(obj, &cfg)
        };
        let reference = solve_reference(&m, objective, &cfg);
        prop_assert_eq!(trail.best_objective, reference.best_objective);
        prop_assert_eq!(trail.solutions.len(), reference.solutions.len());
        prop_assert_eq!(&trail.solutions, &reference.solutions);
        prop_assert_eq!(trail.stats.nodes, reference.stats.nodes);
        prop_assert_eq!(trail.stats.fails, reference.stats.fails);
        prop_assert_eq!(trail.stats.solutions, reference.stats.solutions);
        prop_assert_eq!(trail.stats.max_depth, reference.stats.max_depth);
        prop_assert_eq!(trail.complete, reference.complete);
    }

    /// The scaled-variance lowering used for `STDEV` goals always picks a
    /// most-balanced split of a fixed total.
    #[test]
    fn scaled_variance_balances_totals(total in 2i64..20) {
        let mut m = Model::new();
        let a = m.new_var(0, total);
        let b = m.new_var(0, total);
        m.linear_eq(&[(1, a), (1, b)], total);
        let variance = m.scaled_variance_var(&[a, b]);
        let out = m.minimize(variance, &SearchConfig::default());
        let best = out.best.expect("feasible");
        let diff = (best.value(a) - best.value(b)).abs();
        prop_assert!(diff <= 1, "split {} / {} is not balanced", best.value(a), best.value(b));
    }
}
