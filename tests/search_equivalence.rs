//! Integration tests pinning the trail-based searcher to the retained
//! copy-on-branch reference implementation on the paper's three use cases:
//! the grounded ACloud, Follow-the-Sun and wireless COPs must produce
//! identical incumbent sequences, solution sets and search counters under
//! both state-management schemes, and repeated `invokeSolver` executions must
//! be deterministic. (The sequential-vs-parallel byte-identity of the
//! distributed path is covered by `regression_pipeline.rs`.)

use cologne::datalog::{NodeId, Value};
use cologne::solver::{solve_reference, Objective, SearchConfig, SearchOutcome};
use cologne::{CologneInstance, GoalKind, GroundedCop, ProgramParams, SolverBranching, VarDomain};
use cologne_usecases::programs::{ACLOUD_CENTRALIZED, WIRELESS_CENTRALIZED};
use cologne_usecases::{build_followsun_deployment, FollowSunConfig, FollowSunWorkload};

/// Effective search configuration of an instance, as the pipeline assembles
/// it per invocation (heuristics from the pipeline surface, limits from the
/// parameters) — with the wall clock disabled so runs are deterministic.
fn effective_config(inst: &CologneInstance) -> SearchConfig {
    let mut config = inst.search_config().clone();
    config.time_limit = None;
    config.node_limit = inst.params().solver_node_limit;
    config
}

/// Solve `cop` with both searchers and assert they match observable-for-
/// observable.
fn assert_searchers_agree(cop: &GroundedCop, config: &SearchConfig, context: &str) {
    let (kind, obj) = cop.objective.expect("use-case COPs declare a goal");
    let (trail, reference): (SearchOutcome, SearchOutcome) = match kind {
        GoalKind::Minimize => (
            cop.model.minimize(obj, config),
            solve_reference(&cop.model, Objective::Minimize(obj), config),
        ),
        GoalKind::Maximize => (
            cop.model.maximize(obj, config),
            solve_reference(&cop.model, Objective::Maximize(obj), config),
        ),
        GoalKind::Satisfy => (
            cop.model.solve_all(config),
            solve_reference(&cop.model, Objective::Satisfy, config),
        ),
    };
    assert!(trail.best.is_some(), "{context}: COP must be feasible");
    assert_eq!(
        trail.best_objective, reference.best_objective,
        "{context}: best objective"
    );
    assert_eq!(trail.best, reference.best, "{context}: best assignment");
    assert_eq!(
        trail.solutions, reference.solutions,
        "{context}: incumbent sequence"
    );
    assert_eq!(
        trail.complete, reference.complete,
        "{context}: completeness"
    );
    assert_eq!(trail.stats.nodes, reference.stats.nodes, "{context}: nodes");
    assert_eq!(trail.stats.fails, reference.stats.fails, "{context}: fails");
    assert_eq!(
        trail.stats.solutions, reference.stats.solutions,
        "{context}: solutions"
    );
    assert_eq!(
        trail.stats.max_depth, reference.stats.max_depth,
        "{context}: max depth"
    );
}

fn acloud_instance() -> CologneInstance {
    let params = ProgramParams::new()
        .with_var_domain("assign", VarDomain::BOOL)
        .with_solver_branching(SolverBranching::FirstFail)
        .with_solver_max_time(None)
        .with_solver_node_limit(Some(50_000));
    let mut inst = CologneInstance::new(NodeId(0), ACLOUD_CENTRALIZED, params).unwrap();
    for (vid, cpu, mem) in [(1, 40, 4), (2, 20, 4), (3, 30, 4), (4, 25, 4)] {
        inst.relation("vm")
            .unwrap()
            .insert(vec![Value::Int(vid), Value::Int(cpu), Value::Int(mem)])
            .unwrap();
    }
    for hid in [10, 11, 12] {
        inst.relation("host")
            .unwrap()
            .insert(vec![Value::Int(hid), Value::Int(0), Value::Int(0)])
            .unwrap();
        inst.relation("hostMemThres")
            .unwrap()
            .insert(vec![Value::Int(hid), Value::Int(8)])
            .unwrap();
    }
    inst
}

#[test]
fn acloud_cop_trail_matches_reference() {
    let mut inst = acloud_instance();
    let config = effective_config(&inst);
    let cop = inst.ground_only().unwrap();
    assert_searchers_agree(&cop, &config, "acloud");
    inst.recycle(cop);
}

#[test]
fn acloud_repeated_invocations_are_deterministic() {
    let mut a = acloud_instance();
    let mut b = acloud_instance();
    a.params_mut().solver_max_time = None;
    b.params_mut().solver_max_time = None;
    let ra = a.invoke_solver().unwrap();
    let rb = b.invoke_solver().unwrap();
    assert_eq!(ra.objective, rb.objective);
    assert_eq!(ra.assignments, rb.assignments);
    assert_eq!(ra.stats.nodes, rb.stats.nodes);
    assert_eq!(ra.stats.fails, rb.stats.fails);
    assert_eq!(
        a.last_solver_stats().map(|s| (s.nodes, s.fails)),
        b.last_solver_stats().map(|s| (s.nodes, s.fails)),
    );
}

#[test]
fn branching_param_change_applies_on_next_invocation() {
    use cologne::solver::Branching;
    let mut inst = acloud_instance();
    assert_eq!(inst.search_config().branching, Branching::SmallestDomain);
    // params_mut() invalidates the pipeline; the branching change must be
    // picked up on the next invocation together with the plan rebuild.
    inst.params_mut().solver_branching = SolverBranching::InputOrder;
    inst.invoke_solver().unwrap();
    assert_eq!(inst.search_config().branching, Branching::InputOrder);
    // The merged settings view applies heuristics through one validated
    // entry point; like a params change, it invalidates the pipeline.
    let mut settings = inst.solver_settings();
    assert_eq!(settings.branching, SolverBranching::InputOrder);
    settings.branching = SolverBranching::LargestDomain;
    inst.apply_solver_settings(&settings).unwrap();
    inst.invoke_solver().unwrap();
    assert_eq!(inst.search_config().branching, Branching::LargestDomain);
}

fn wireless_instance() -> CologneInstance {
    let channels = [1i64, 6, 11];
    let params = ProgramParams::new()
        .with_var_domain("assign", VarDomain::new(1, 11))
        .with_constant("F_mindiff", 3)
        .with_solver_branching(SolverBranching::FirstFail)
        .with_solver_max_time(None)
        .with_solver_node_limit(Some(50_000));
    let mut inst = CologneInstance::new(NodeId(0), WIRELESS_CENTRALIZED, params).unwrap();
    // A 4-node line topology with one primary user.
    let mut link = inst.relation("link").unwrap();
    for (a, b) in [(0i64, 1i64), (1, 2), (2, 3)] {
        link.insert(vec![Value::Int(a), Value::Int(b)]).unwrap();
        link.insert(vec![Value::Int(b), Value::Int(a)]).unwrap();
    }
    for n in 0..4i64 {
        inst.relation("numInterface")
            .unwrap()
            .insert(vec![Value::Int(n), Value::Int(2)])
            .unwrap();
    }
    inst.relation("primaryUser")
        .unwrap()
        .insert(vec![Value::Int(1), Value::Int(channels[0])])
        .unwrap();
    inst
}

#[test]
fn wireless_cop_trail_matches_reference() {
    let mut inst = wireless_instance();
    let config = effective_config(&inst);
    let cop = inst.ground_only().unwrap();
    assert_searchers_agree(&cop, &config, "wireless");
    inst.recycle(cop);
}

#[test]
fn followsun_cop_trail_matches_reference() {
    let config = FollowSunConfig {
        data_centers: 3,
        capacity: 30,
        max_initial_allocation: 6,
        solver_node_limit: 20_000,
        seed: 5,
        ..FollowSunConfig::default()
    };
    let workload = FollowSunWorkload::generate(&config);
    let mut driver = build_followsun_deployment(&config, &workload);
    // Start a link negotiation so the initiator's COP is non-trivial.
    let initiator = {
        let (a, b) = workload.topology.links()[0];
        let (initiator, peer) = (a.max(b), a.min(b));
        driver
            .insert(
                NodeId(initiator),
                "setLink",
                vec![Value::Addr(NodeId(initiator)), Value::Addr(NodeId(peer))],
            )
            .unwrap();
        driver.run_messages_until(cologne::net::SimTime::from_secs(2));
        initiator
    };
    let inst = driver.instance_mut(NodeId(initiator)).unwrap();
    inst.params_mut().solver_max_time = None;
    let search = effective_config(inst);
    let cop = inst.ground_only().unwrap();
    assert!(!cop.is_trivial(), "negotiation must ground a real COP");
    assert_searchers_agree(&cop, &search, "followsun");
    inst.recycle(cop);
}
