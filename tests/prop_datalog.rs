//! Property-based tests for the incremental Datalog engine: incremental
//! maintenance under arbitrary insert/delete sequences is equivalent to
//! recomputing from scratch, and aggregates match their reference
//! definitions.

use proptest::prelude::*;

use cologne_datalog::{AggFunc, Atom, BodyItem, Engine, Head, HeadArg, NodeId, Rule, Term, Value};

fn tc_engine() -> Engine {
    let mut e = Engine::new(NodeId(0));
    e.add_rule(Rule::new(
        "r1",
        Head::simple("path", vec![Term::var("X"), Term::var("Y")]),
        vec![BodyItem::Atom(Atom::new(
            "link",
            vec![Term::var("X"), Term::var("Y")],
        ))],
    ));
    e.add_rule(Rule::new(
        "r2",
        Head::simple("path", vec![Term::var("X"), Term::var("Z")]),
        vec![
            BodyItem::Atom(Atom::new("link", vec![Term::var("X"), Term::var("Y")])),
            BodyItem::Atom(Atom::new("path", vec![Term::var("Y"), Term::var("Z")])),
        ],
    ));
    e
}

/// Reference transitive closure.
fn closure(
    edges: &std::collections::BTreeSet<(i64, i64)>,
) -> std::collections::BTreeSet<(i64, i64)> {
    let mut reach = edges.clone();
    loop {
        let mut added = false;
        let snapshot: Vec<(i64, i64)> = reach.iter().copied().collect();
        for &(a, b) in edges.iter() {
            for &(c, d) in &snapshot {
                if b == c && reach.insert((a, d)) {
                    added = true;
                }
            }
        }
        if !added {
            break;
        }
    }
    reach
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Incremental *insertion* maintenance of a recursive program is
    /// equivalent to recomputing from scratch, regardless of arrival order.
    /// (Deletions under recursion need delete-and-rederive, which — like
    /// RapidNet's counting evaluation — this engine does not implement; the
    /// Colog programs of the paper contain no recursive deletions.)
    #[test]
    fn incremental_insertions_equal_recomputation(
        edge_list in prop::collection::vec((0i64..6, 0i64..6), 1..20)
    ) {
        let mut engine = tc_engine();
        let mut edges: std::collections::BTreeSet<(i64, i64)> = Default::default();
        for (a, b) in &edge_list {
            if a == b {
                continue;
            }
            engine.insert("link", vec![Value::Int(*a), Value::Int(*b)]);
            engine.run(); // pipelined: one delta at a time
            edges.insert((*a, *b));
        }
        let expected = closure(&edges);
        let actual: std::collections::BTreeSet<(i64, i64)> = engine
            .tuples("path")
            .into_iter()
            .map(|t| (t[0].as_int().unwrap(), t[1].as_int().unwrap()))
            .collect();
        prop_assert_eq!(actual, expected);
    }

    /// Interleaved insertions and deletions on a *non-recursive* rule (the
    /// shape of every regular rule in the paper's programs) leave the engine
    /// exactly in the recomputed state.
    #[test]
    fn incremental_updates_equal_recomputation_nonrecursive(
        ops in prop::collection::vec((0i64..4, 0i64..4, prop::bool::ANY), 1..30)
    ) {
        // twoHop(X,Z) <- link(X,Y), hop(Y,Z): a join of two base relations.
        let mut engine = Engine::new(NodeId(0));
        engine.add_rule(Rule::new(
            "r1",
            Head::simple("twoHop", vec![Term::var("X"), Term::var("Z")]),
            vec![
                BodyItem::Atom(Atom::new("link", vec![Term::var("X"), Term::var("Y")])),
                BodyItem::Atom(Atom::new("hop", vec![Term::var("Y"), Term::var("Z")])),
            ],
        ));
        let mut link_counts: std::collections::BTreeMap<(i64, i64), i64> = Default::default();
        let mut hop_counts: std::collections::BTreeMap<(i64, i64), i64> = Default::default();
        for (i, (a, b, insert)) in ops.iter().enumerate() {
            let (rel, counts) = if i % 2 == 0 {
                ("link", &mut link_counts)
            } else {
                ("hop", &mut hop_counts)
            };
            let tuple = vec![Value::Int(*a), Value::Int(*b)];
            if *insert {
                engine.insert(rel, tuple);
                *counts.entry((*a, *b)).or_insert(0) += 1;
            } else {
                engine.delete(rel, tuple);
                *counts.entry((*a, *b)).or_insert(0) -= 1;
            }
            engine.run();
        }
        let links: Vec<(i64, i64)> =
            link_counts.iter().filter(|(_, &c)| c > 0).map(|(&e, _)| e).collect();
        let hops: Vec<(i64, i64)> =
            hop_counts.iter().filter(|(_, &c)| c > 0).map(|(&e, _)| e).collect();
        let mut expected: std::collections::BTreeSet<(i64, i64)> = Default::default();
        for &(x, y) in &links {
            for &(y2, z) in &hops {
                if y == y2 {
                    expected.insert((x, z));
                }
            }
        }
        let actual: std::collections::BTreeSet<(i64, i64)> = engine
            .tuples("twoHop")
            .into_iter()
            .map(|t| (t[0].as_int().unwrap(), t[1].as_int().unwrap()))
            .collect();
        prop_assert_eq!(actual, expected);
    }

    /// SUM/MIN/MAX/COUNT aggregates always equal their reference values over
    /// the visible tuples.
    #[test]
    fn aggregates_match_reference(
        rows in prop::collection::vec((0i64..4, -10i64..10), 1..20)
    ) {
        let mut e = Engine::new(NodeId(0));
        for (func, rel) in [
            (AggFunc::Sum, "sums"),
            (AggFunc::Min, "mins"),
            (AggFunc::Max, "maxs"),
            (AggFunc::Count, "counts"),
        ] {
            e.add_rule(Rule::new(
                "agg",
                Head {
                    relation: rel.into(),
                    args: vec![HeadArg::Term(Term::var("G")), HeadArg::Agg(func, "V".into())],
                    located: false,
                },
                vec![BodyItem::Atom(Atom::new("data", vec![Term::var("G"), Term::var("V")]))],
            ));
        }
        let unique: std::collections::BTreeSet<(i64, i64)> = rows.iter().copied().collect();
        for (g, v) in &unique {
            e.insert("data", vec![Value::Int(*g), Value::Int(*v)]);
        }
        e.run();
        let mut groups: std::collections::BTreeMap<i64, Vec<i64>> = Default::default();
        for (g, v) in &unique {
            groups.entry(*g).or_default().push(*v);
        }
        for (g, values) in &groups {
            let sum: i64 = values.iter().sum();
            let min = *values.iter().min().unwrap();
            let max = *values.iter().max().unwrap();
            let count = values.len() as i64;
            prop_assert!(e.contains("sums", &vec![Value::Int(*g), Value::Int(sum)]));
            prop_assert!(e.contains("mins", &vec![Value::Int(*g), Value::Int(min)]));
            prop_assert!(e.contains("maxs", &vec![Value::Int(*g), Value::Int(max)]));
            prop_assert!(e.contains("counts", &vec![Value::Int(*g), Value::Int(count)]));
        }
        prop_assert_eq!(e.relation_len("sums"), groups.len());
    }
}
