//! Regression tests for the incremental re-optimization path: after a
//! single-tuple delta, `invoke_solver` must take the delta-aware grounding
//! path (`incremental_builds`, not `full_rebuilds`) and still produce a
//! report byte-for-byte identical — outcome flags, objective, materialized
//! tables — to a from-scratch solve of the same database. Search statistics
//! are intentionally exempt: exploring fewer nodes is the point.

use cologne::datalog::{NodeId, Tuple, Value};
use cologne::{CologneInstance, ProgramParams, SolveReport, SolverBranching, VarDomain};
use cologne_usecases::programs::{ACLOUD_CENTRALIZED, WIRELESS_CENTRALIZED};

fn ints(vals: &[i64]) -> Tuple {
    vals.iter().map(|&v| Value::Int(v)).collect()
}

fn acloud_params() -> ProgramParams {
    ProgramParams::new().with_var_domain("assign", VarDomain::BOOL)
}

fn acloud_base_facts() -> Vec<(&'static str, Tuple)> {
    let mut facts = Vec::new();
    for (vid, cpu, mem) in [(1, 40, 4), (2, 20, 4), (3, 30, 4)] {
        facts.push(("vm", ints(&[vid, cpu, mem])));
    }
    for hid in [10, 11, 12] {
        facts.push(("host", ints(&[hid, 0, 0])));
        facts.push(("hostMemThres", ints(&[hid, 16])));
    }
    facts
}

fn wireless_params() -> ProgramParams {
    ProgramParams::new()
        .with_var_domain("assign", VarDomain::new(1, 3))
        .with_constant("F_mindiff", 2)
}

fn wireless_base_facts() -> Vec<(&'static str, Tuple)> {
    // A triangle of links (both directions) on nodes 1..=3, two interfaces
    // per node, one primary-user restriction.
    let mut facts = Vec::new();
    for (a, b) in [(1, 2), (2, 3), (1, 3)] {
        facts.push(("link", ints(&[a, b])));
        facts.push(("link", ints(&[b, a])));
    }
    for n in 1..=3 {
        facts.push(("numInterface", ints(&[n, 2])));
    }
    facts.push(("primaryUser", ints(&[1, 2])));
    facts
}

fn instance(program: &str, params: &ProgramParams, facts: &[(&str, Tuple)]) -> CologneInstance {
    let mut inst = CologneInstance::new(NodeId(0), program, params.clone()).unwrap();
    for (rel, tuple) in facts {
        inst.relation(rel).unwrap().insert(tuple.clone()).unwrap();
    }
    inst
}

/// Byte-for-byte equality of everything a `SolveReport` asserts about the
/// optimization problem. Stats are excluded (see module docs).
fn assert_same_result(incremental: &SolveReport, cold: &SolveReport, context: &str) {
    assert_eq!(incremental.feasible, cold.feasible, "{context}: feasible");
    assert_eq!(incremental.trivial, cold.trivial, "{context}: trivial");
    assert_eq!(
        incremental.objective, cold.objective,
        "{context}: objective"
    );
    assert_eq!(
        incremental.proven_optimal, cold.proven_optimal,
        "{context}: proven_optimal"
    );
    assert_eq!(
        incremental.assignments, cold.assignments,
        "{context}: assignments"
    );
    assert_eq!(incremental.outgoing, cold.outgoing, "{context}: outgoing");
}

/// Drive `program` through the incremental path (solve, apply one delta,
/// re-solve) and compare the re-solve against a from-scratch solve of the
/// final database.
fn check_single_tuple_delta(
    context: &str,
    program: &str,
    params: &ProgramParams,
    base_facts: &[(&str, Tuple)],
    delta: (&str, Tuple),
) {
    let mut warm = instance(program, params, base_facts);
    let first = warm.invoke_solver().unwrap();
    assert!(first.feasible, "{context}: base problem must be feasible");
    assert_eq!(
        warm.pipeline_stats().full_rebuilds,
        1,
        "{context}: first grounding is cold"
    );
    assert_eq!(warm.pipeline_stats().incremental_builds, 0, "{context}");

    let (rel, tuple) = &delta;
    warm.relation(rel).unwrap().insert(tuple.clone()).unwrap();
    let incremental = warm.invoke_solver().unwrap();
    assert_eq!(
        warm.pipeline_stats().full_rebuilds,
        1,
        "{context}: the delta re-solve must not be a full rebuild"
    );
    assert_eq!(
        warm.pipeline_stats().incremental_builds,
        1,
        "{context}: the delta re-solve must take the incremental path"
    );
    assert!(
        incremental.stats.warm_start,
        "{context}: the re-solve must be warm-started"
    );

    // From-scratch reference: a brand-new instance over the final database.
    let mut all_facts = base_facts.to_vec();
    all_facts.push((rel, tuple.clone()));
    let mut cold = instance(program, params, &all_facts);
    let reference = cold.invoke_solver().unwrap();
    assert_same_result(&incremental, &reference, context);

    // The same equivalence must hold with the re-optimization machinery
    // disabled outright — pinning that the knobs only change how much work
    // a solve takes, never its result.
    let disabled_params = params
        .clone()
        .with_warm_start(false)
        .with_delta_grounding(false);
    let mut disabled = instance(program, &disabled_params, &all_facts);
    let plain = disabled.invoke_solver().unwrap();
    assert_eq!(
        disabled.pipeline_stats().full_rebuilds,
        1,
        "{context}: knobs off = cold"
    );
    assert_eq!(disabled.pipeline_stats().incremental_builds, 0, "{context}");
    assert_same_result(&plain, &reference, &format!("{context} (knobs off)"));
}

#[test]
fn acloud_single_vm_arrival_matches_cold_solve() {
    check_single_tuple_delta(
        "acloud insert",
        ACLOUD_CENTRALIZED,
        &acloud_params(),
        &acloud_base_facts(),
        ("vm", ints(&[4, 50, 4])),
    );
}

#[test]
fn wireless_single_link_arrival_matches_cold_solve() {
    check_single_tuple_delta(
        "wireless insert",
        WIRELESS_CENTRALIZED,
        &wireless_params(),
        &wireless_base_facts(),
        ("link", ints(&[3, 4])),
    );
}

#[test]
fn acloud_first_fail_single_vm_arrival_matches_cold_solve() {
    // The ACloud controllers run with first-fail branching; pin the
    // incremental/cold equivalence under that heuristic too.
    check_single_tuple_delta(
        "acloud first-fail insert",
        ACLOUD_CENTRALIZED,
        &acloud_params().with_solver_branching(SolverBranching::FirstFail),
        &acloud_base_facts(),
        ("vm", ints(&[4, 50, 4])),
    );
}

#[test]
fn wireless_first_fail_single_link_arrival_matches_cold_solve() {
    check_single_tuple_delta(
        "wireless first-fail insert",
        WIRELESS_CENTRALIZED,
        &wireless_params().with_solver_branching(SolverBranching::FirstFail),
        &wireless_base_facts(),
        ("link", ints(&[3, 4])),
    );
}

#[test]
fn acloud_single_vm_departure_matches_cold_solve() {
    let params = acloud_params();
    let base = acloud_base_facts();
    let mut warm = instance(ACLOUD_CENTRALIZED, &params, &base);
    warm.invoke_solver().unwrap();
    warm.relation("vm")
        .unwrap()
        .delete(ints(&[3, 30, 4]))
        .unwrap();
    let incremental = warm.invoke_solver().unwrap();
    assert_eq!(warm.pipeline_stats().incremental_builds, 1);
    assert_eq!(warm.pipeline_stats().full_rebuilds, 1);

    let remaining: Vec<(&str, Tuple)> = base
        .into_iter()
        .filter(|(rel, tuple)| !(*rel == "vm" && tuple == &ints(&[3, 30, 4])))
        .collect();
    let mut cold = instance(ACLOUD_CENTRALIZED, &params, &remaining);
    let reference = cold.invoke_solver().unwrap();
    assert_same_result(&incremental, &reference, "acloud delete");
}

#[test]
fn unchanged_inputs_reuse_the_whole_grounded_cop() {
    let mut inst = instance(ACLOUD_CENTRALIZED, &acloud_params(), &acloud_base_facts());
    let first = inst.invoke_solver().unwrap();
    assert!(first.proven_optimal);
    let cumulative_after_first = inst.cumulative_solver_stats().nodes;
    // Materialization dirties only solver tables (assign, hostStdevCpu) —
    // none of them is a grounding input, so the next invocation reuses the
    // retained COP without re-grounding anything, and (the first solve
    // having proved optimality) replays the memoized report without
    // searching.
    let second = inst.invoke_solver().unwrap();
    assert_eq!(inst.pipeline_stats().full_rebuilds, 1);
    assert_eq!(inst.pipeline_stats().incremental_builds, 1);
    assert_same_result(&second, &first, "no-op re-solve");
    assert_eq!(
        inst.cumulative_solver_stats().nodes,
        cumulative_after_first,
        "a memoized replay must not run a search"
    );
}

#[test]
fn ground_only_between_invocations_drops_the_memoized_report() {
    let mut inst = instance(ACLOUD_CENTRALIZED, &acloud_params(), &acloud_base_facts());
    let first = inst.invoke_solver().unwrap();
    // Change the database, then consume the delta checkpoint through
    // ground_only: the next invoke_solver sees an empty summary, but must
    // NOT replay the pre-change report.
    inst.relation("vm")
        .unwrap()
        .insert(ints(&[4, 50, 4]))
        .unwrap();
    let cop = inst.ground_only().unwrap();
    inst.recycle(cop);
    let report = inst.invoke_solver().unwrap();
    assert_ne!(
        report.table("assign").len(),
        first.table("assign").len(),
        "the re-solve must see the post-delta COP, not the memoized report"
    );
    assert_eq!(report.table("assign").len(), 12); // 4 VMs x 3 hosts
}

#[test]
fn wall_clock_limited_incomplete_solves_are_not_memoized() {
    // A node budget too small to prove optimality, combined with the
    // default wall-clock limit: a retry on the unchanged database must
    // re-run the search (a fresh budget may improve the incumbent), not
    // replay the limit-stopped report.
    let params = acloud_params().with_solver_node_limit(Some(3));
    let mut inst = instance(ACLOUD_CENTRALIZED, &params, &acloud_base_facts());
    for vid in 10..16i64 {
        inst.relation("vm")
            .unwrap()
            .insert(ints(&[vid, 10 + vid, 1]))
            .unwrap();
    }
    let first = inst.invoke_solver().unwrap();
    assert!(!first.proven_optimal);
    let cumulative_after_first = inst.cumulative_solver_stats().nodes;
    inst.invoke_solver().unwrap();
    assert!(
        inst.cumulative_solver_stats().nodes > cumulative_after_first,
        "an incomplete wall-clock-limited solve must be re-run on retry"
    );
    // With the wall clock disabled the same bounded search is deterministic
    // and the replay is safe again.
    let deterministic = params.clone().with_solver_max_time(None);
    let mut inst = instance(ACLOUD_CENTRALIZED, &deterministic, &acloud_base_facts());
    for vid in 10..16i64 {
        inst.relation("vm")
            .unwrap()
            .insert(ints(&[vid, 10 + vid, 1]))
            .unwrap();
    }
    inst.invoke_solver().unwrap();
    let cumulative_after_first = inst.cumulative_solver_stats().nodes;
    inst.invoke_solver().unwrap();
    assert_eq!(
        inst.cumulative_solver_stats().nodes,
        cumulative_after_first,
        "deterministically-limited solves replay without searching"
    );
}

#[test]
fn params_change_forces_a_full_rebuild() {
    let mut inst = instance(ACLOUD_CENTRALIZED, &acloud_params(), &acloud_base_facts());
    inst.invoke_solver().unwrap();
    inst.invoke_solver().unwrap();
    let stats = inst.pipeline_stats();
    assert_eq!((stats.full_rebuilds, stats.incremental_builds), (1, 1));
    // A parameter change drops every cross-invocation cache: the next
    // grounding is cold (and not warm-started), the one after is
    // incremental again.
    inst.params_mut().solver_node_limit = Some(1_000_000);
    let after = inst.invoke_solver().unwrap();
    let stats = inst.pipeline_stats();
    assert_eq!((stats.full_rebuilds, stats.incremental_builds), (2, 1));
    assert!(
        !after.stats.warm_start,
        "a params change must clear the warm memory"
    );
    inst.invoke_solver().unwrap();
    let stats = inst.pipeline_stats();
    assert_eq!((stats.full_rebuilds, stats.incremental_builds), (2, 2));
}

#[test]
fn rejected_writes_stay_on_the_reuse_path() {
    let mut inst = instance(ACLOUD_CENTRALIZED, &acloud_params(), &acloud_base_facts());
    let first = inst.invoke_solver().unwrap();
    // A relation the program never mentions is refused on every write
    // surface (that is the point of the schema catalog), and the rejected
    // writes must not dirty anything: the next invocation reuses the
    // previous COP instead of re-grounding.
    assert!(inst.relation("monitoringHeartbeat").is_err());
    assert!(inst
        .try_receive(
            NodeId(1),
            &cologne::datalog::RemoteTuple {
                dest: NodeId(0),
                relation: "monitoringHeartbeat".into(),
                tuple: ints(&[1, 2, 3]),
                insert: true,
            }
        )
        .is_err());
    let second = inst.invoke_solver().unwrap();
    assert_eq!(inst.pipeline_stats().full_rebuilds, 1);
    assert_eq!(inst.pipeline_stats().incremental_builds, 1);
    assert_same_result(&second, &first, "rejected writes");
}
