//! Acceptance tests for the typed session API: schema-checked relation
//! handles, the unified `DeploymentBuilder`, and streaming solve events.
//!
//! Pins the three contracts the redesign introduced:
//!
//! 1. **Eager validation** — unknown relations and schema mismatches error
//!    at the write (with did-you-mean suggestions), including tuples
//!    received from remote nodes;
//! 2. **Builder equivalence** — a deployment built through
//!    [`DeploymentBuilder`] produces `SolveReport`s byte-identical (modulo
//!    wall-clock micros) to a directly-constructed `CologneInstance` (and,
//!    distributed, to per-node parameter overrides) on all three paper use
//!    cases;
//! 3. **Observer determinism and safe cancellation** — a seeded LNS run on
//!    the large ACloud instance emits the same event sequence twice, and an
//!    observer cancellation never poisons the instance (the next invocation
//!    is a clean full rebuild).

use cologne::datalog::{NodeId, RemoteTuple, Tuple, Value};
use cologne::net::{LinkProps, SimTime, Topology};
use cologne::{
    CologneError, CologneInstance, DeploymentBuilder, EventLog, ProgramParams, SolveEvent,
    SolveReport, SolverMode, VarDomain,
};
use cologne_usecases::programs::{ACLOUD_CENTRALIZED, FOLLOWSUN_DISTRIBUTED, WIRELESS_CENTRALIZED};
use cologne_usecases::{large_acloud_instance, LargeAcloudConfig};

fn ints(vals: &[i64]) -> Tuple {
    vals.iter().map(|&v| Value::Int(v)).collect()
}

/// Debug rendering of a report with the wall-clock component zeroed — the
/// "byte-identical" comparison unit (every other field, including all
/// deterministic search counters, participates).
fn normalized(report: &SolveReport) -> String {
    let mut r = report.clone();
    r.stats.elapsed_micros = 0;
    format!("{r:?}")
}

// ---------------------------------------------------------------------------
// 1. error paths
// ---------------------------------------------------------------------------

fn acloud_params() -> ProgramParams {
    ProgramParams::new()
        .with_var_domain("assign", VarDomain::BOOL)
        .with_solver_max_time(None)
}

#[test]
fn unknown_relation_and_schema_mismatch_error_eagerly() {
    let mut inst = CologneInstance::new(NodeId(0), ACLOUD_CENTRALIZED, acloud_params()).unwrap();
    // typo in the relation name: rejected at handle acquisition
    match inst.relation("hostMemThress").unwrap_err() {
        CologneError::UnknownRelation {
            relation,
            suggestion,
        } => {
            assert_eq!(relation, "hostMemThress");
            assert_eq!(suggestion.as_deref(), Some("hostMemThres"));
        }
        other => panic!("unexpected error: {other:?}"),
    }
    // wrong arity: rejected at the write, nothing queued
    let err = inst.relation("vm").unwrap_err_on_insert(ints(&[1, 40]));
    assert!(matches!(err, CologneError::SchemaMismatch { .. }));
    assert_eq!(inst.scan("vm").count(), 0);
    // the error message names the relation and the violation
    assert!(err.to_string().contains("vm"));
    assert!(err.to_string().contains("arity"));
}

/// Helper so the test above reads linearly.
trait UnwrapErrOnInsert {
    fn unwrap_err_on_insert(self, tuple: Tuple) -> CologneError;
}
impl UnwrapErrOnInsert for Result<cologne::RelationHandle<'_>, CologneError> {
    fn unwrap_err_on_insert(self, tuple: Tuple) -> CologneError {
        self.unwrap().insert(tuple).unwrap_err()
    }
}

#[test]
fn receive_rejects_malformed_remote_tuples() {
    let mut inst = CologneInstance::new(NodeId(0), ACLOUD_CENTRALIZED, acloud_params()).unwrap();
    inst.relation("vm")
        .unwrap()
        .insert(ints(&[1, 40, 4]))
        .unwrap();
    inst.run_rules();

    // unknown relation from a peer
    let err = inst
        .try_receive(
            NodeId(1),
            &RemoteTuple {
                dest: NodeId(0),
                relation: "vn".into(),
                tuple: ints(&[2, 20, 4]),
                insert: true,
            },
        )
        .unwrap_err();
    assert!(matches!(err, CologneError::UnknownRelation { .. }));

    // malformed tuple (wrong arity) for a known relation
    let err = inst
        .try_receive(
            NodeId(1),
            &RemoteTuple {
                dest: NodeId(0),
                relation: "vm".into(),
                tuple: ints(&[2]),
                insert: true,
            },
        )
        .unwrap_err();
    assert!(matches!(err, CologneError::SchemaMismatch { .. }));

    // state was not corrupted by either rejection
    inst.run_rules();
    assert_eq!(inst.scan("vm").count(), 1);
    assert_eq!(inst.scan("vn").count(), 0);

    // a well-formed remote tuple is applied
    inst.try_receive(
        NodeId(1),
        &RemoteTuple {
            dest: NodeId(0),
            relation: "vm".into(),
            tuple: ints(&[2, 20, 4]),
            insert: true,
        },
    )
    .unwrap();
    inst.run_rules();
    assert_eq!(inst.scan("vm").count(), 2);
}

// ---------------------------------------------------------------------------
// 2. builder equivalence
// ---------------------------------------------------------------------------

#[test]
fn acloud_builder_matches_direct_instance_byte_for_byte() {
    let facts: Vec<(&str, Tuple)> = vec![
        ("vm", ints(&[1, 40, 4])),
        ("vm", ints(&[2, 20, 4])),
        ("vm", ints(&[3, 30, 4])),
        ("host", ints(&[10, 0, 0])),
        ("host", ints(&[11, 0, 0])),
        ("host", ints(&[12, 0, 0])),
        ("hostMemThres", ints(&[10, 16])),
        ("hostMemThres", ints(&[11, 16])),
        ("hostMemThres", ints(&[12, 16])),
    ];

    // direct instance construction
    let direct = {
        let mut inst =
            CologneInstance::new(NodeId(0), ACLOUD_CENTRALIZED, acloud_params()).unwrap();
        for (rel, tuple) in &facts {
            inst.relation(rel).unwrap().insert(tuple.clone()).unwrap();
        }
        inst.invoke_solver().unwrap()
    };

    // builder surface
    let new = {
        let mut d = DeploymentBuilder::new(ACLOUD_CENTRALIZED)
            .params(acloud_params())
            .build()
            .unwrap();
        let node = d.single_node().unwrap();
        for (rel, tuple) in &facts {
            d.relation(rel).unwrap().insert(tuple.clone()).unwrap();
        }
        d.invoke_at(node).unwrap()
    };

    assert_eq!(normalized(&direct), normalized(&new), "acloud");
}

#[test]
fn wireless_builder_matches_direct_instance_byte_for_byte() {
    let params = ProgramParams::new()
        .with_var_domain("assign", VarDomain::new(1, 3))
        .with_constant("F_mindiff", 2)
        .with_solver_max_time(None);
    let mut facts: Vec<(&str, Tuple)> = Vec::new();
    for (a, b) in [(1, 2), (2, 3), (1, 3)] {
        facts.push(("link", ints(&[a, b])));
        facts.push(("link", ints(&[b, a])));
    }
    for n in 1..=3 {
        facts.push(("numInterface", ints(&[n, 2])));
    }
    facts.push(("primaryUser", ints(&[1, 2])));

    let direct = {
        let mut inst =
            CologneInstance::new(NodeId(0), WIRELESS_CENTRALIZED, params.clone()).unwrap();
        for (rel, tuple) in &facts {
            inst.relation(rel).unwrap().insert(tuple.clone()).unwrap();
        }
        inst.invoke_solver().unwrap()
    };

    let new = {
        let mut d = DeploymentBuilder::new(WIRELESS_CENTRALIZED)
            .params(params)
            .build()
            .unwrap();
        let node = d.single_node().unwrap();
        for (rel, tuple) in &facts {
            d.relation(rel).unwrap().insert(tuple.clone()).unwrap();
        }
        d.invoke_at(node).unwrap()
    };

    assert_eq!(normalized(&direct), normalized(&new), "wireless");
}

/// Per-node Follow-the-Sun base facts for a 2-DC deployment.
fn followsun_facts(node: u32) -> Vec<(&'static str, Tuple)> {
    let x = Value::Addr(NodeId(node));
    let other = Value::Addr(NodeId(1 - node));
    let mut facts: Vec<(&'static str, Tuple)> = vec![
        ("link", vec![x.clone(), other.clone()]),
        ("opCost", vec![x.clone(), Value::Int(10)]),
        ("resource", vec![x.clone(), Value::Int(20)]),
        ("migCost", vec![x.clone(), other, Value::Int(10)]),
    ];
    for d in 0..2i64 {
        facts.push(("dc", vec![x.clone(), Value::Int(d)]));
        facts.push((
            "curVm",
            vec![
                x.clone(),
                Value::Int(d),
                Value::Int(if node == 0 { 6 } else { 1 }),
            ],
        ));
        facts.push((
            "commCost",
            vec![
                x.clone(),
                Value::Int(d),
                Value::Int(if node as i64 == d { 10 } else { 80 }),
            ],
        ));
    }
    facts
}

#[test]
fn followsun_base_params_match_per_node_overrides_byte_for_byte() {
    // Per-node overrides that all equal the base parameters must produce a
    // deployment byte-identical to the homogeneous one.
    let params = ProgramParams::new()
        .with_var_domain("migVm", VarDomain::new(-10, 10))
        .with_solver_node_limit(Some(5_000))
        .with_solver_max_time(None);
    let set_link = |n: u32| {
        (
            "setLink",
            vec![Value::Addr(NodeId(1)), Value::Addr(NodeId(n))],
        )
    };
    let run = |builder: DeploymentBuilder| {
        let mut d = builder
            .topology(Topology::line(2, LinkProps::default()))
            .build()
            .unwrap();
        for node in [0u32, 1] {
            for (rel, tuple) in followsun_facts(node) {
                d.insert(NodeId(node), rel, tuple).unwrap();
            }
        }
        let (rel, tuple) = set_link(0);
        d.insert(NodeId(1), rel, tuple).unwrap();
        d.tick(SimTime::from_secs(2));
        d.invoke().unwrap()
    };

    let homogeneous = run(DeploymentBuilder::new(FOLLOWSUN_DISTRIBUTED).params(params.clone()));
    let overridden = run(DeploymentBuilder::new(FOLLOWSUN_DISTRIBUTED)
        .node_params(NodeId(0), params.clone())
        .node_params(NodeId(1), params));

    assert_eq!(homogeneous.len(), overridden.len());
    for (node, report) in &homogeneous {
        assert_eq!(
            normalized(report),
            normalized(&overridden[node]),
            "follow-the-sun node {node:?}"
        );
    }
}

// ---------------------------------------------------------------------------
// 3. observer determinism + cancellation
// ---------------------------------------------------------------------------

// ---------------------------------------------------------------------------
// 4. the typed solve entry point vs the raw per-instance observer
// ---------------------------------------------------------------------------

use cologne::{SolveRequest, StatsSnapshot};

fn acloud_deployment_with_facts() -> cologne::Deployment {
    let mut d = DeploymentBuilder::new(ACLOUD_CENTRALIZED)
        .params(acloud_params())
        .build()
        .unwrap();
    for (rel, tuple) in [
        ("vm", ints(&[1, 40, 4])),
        ("vm", ints(&[2, 20, 4])),
        ("vm", ints(&[3, 30, 4])),
        ("host", ints(&[10, 0, 0])),
        ("host", ints(&[11, 0, 0])),
        ("hostMemThres", ints(&[10, 16])),
        ("hostMemThres", ints(&[11, 16])),
    ] {
        d.relation(rel).unwrap().insert(tuple).unwrap();
    }
    d
}

#[test]
fn solve_request_matches_raw_observer_entry_point() {
    // the raw per-instance observer entry point...
    let (old_report, old_events) = {
        let mut d = acloud_deployment_with_facts();
        let node = d.single_node().unwrap();
        let mut log = EventLog::bounded(1024);
        let report = d
            .instance_mut(node)
            .unwrap()
            .invoke_solver_with_observer(&mut log)
            .unwrap();
        (normalized(&report), log.drain())
    };

    // ...and the typed request must produce the identical report and the
    // identical event sequence
    let (new_report, new_events) = {
        let mut d = acloud_deployment_with_facts();
        let node = d.single_node().unwrap();
        let response = d.solve(&SolveRequest::at(node).with_events(1024)).unwrap();
        assert_eq!(response.dropped_events, 0);
        let report = normalized(response.report(node).unwrap());
        let events: Vec<SolveEvent> = response.events.into_iter().map(|(_, e)| e).collect();
        (report, events)
    };

    assert_eq!(old_report, new_report, "reports must be byte-identical");
    assert_eq!(old_events, new_events, "event sequences must be identical");
    assert!(!new_events.is_empty(), "events must actually stream");
}

#[test]
fn solve_request_without_events_matches_invoke() {
    let plain = {
        let mut d = acloud_deployment_with_facts();
        let node = d.single_node().unwrap();
        normalized(&d.invoke_at(node).unwrap())
    };
    let typed = {
        let mut d = acloud_deployment_with_facts();
        let node = d.single_node().unwrap();
        let response = d.solve(&SolveRequest::at(node)).unwrap();
        assert!(response.events.is_empty());
        normalized(response.report(node).unwrap())
    };
    assert_eq!(plain, typed);
}

#[test]
fn cancel_after_incumbents_via_request_keeps_first_solution() {
    let mut d = acloud_deployment_with_facts();
    let node = d.single_node().unwrap();
    let response = d
        .solve(&SolveRequest::at(node).cancel_after_incumbents(1))
        .unwrap();
    let report = response.report(node).unwrap();
    assert!(report.stats.cancelled);
    assert!(report.feasible, "the first incumbent is kept");
    assert!(!report.proven_optimal);
    let incumbents = response
        .events
        .iter()
        .filter(|(_, e)| matches!(e, SolveEvent::Incumbent { .. }))
        .count();
    assert_eq!(incumbents, 1, "exactly one incumbent before cancellation");
}

#[test]
fn unified_stats_snapshot_reflects_the_session() {
    let mut d = acloud_deployment_with_facts();
    let node = d.single_node().unwrap();

    let before: StatsSnapshot = d.stats();
    assert_eq!(before.total_invocations(), 0);
    assert_eq!(before.nodes.len(), 1);

    d.solve(&SolveRequest::at(node)).unwrap();
    d.solve(&SolveRequest::at(node)).unwrap();

    let after = d.stats();
    assert_eq!(after.total_invocations(), 2);
    let node_stats = after.node(node).unwrap();
    assert_eq!(node_stats.solver_invocations, 2);
    assert!(node_stats.search_total.nodes > 0, "search effort recorded");
    assert!(
        node_stats.last_search.is_some(),
        "last solve's stats retained"
    );
    assert!(
        node_stats.pipeline.full_rebuilds >= 1,
        "pipeline activity visible in the snapshot"
    );
    // the snapshot renders for operators
    let rendered = format!("{after}");
    assert!(rendered.contains("invocation"), "display impl: {rendered}");
}

fn lns_config() -> LargeAcloudConfig {
    LargeAcloudConfig {
        vms: 60,
        hosts: 6,
        node_limit: 6_000,
        seed: 23,
        workers: None,
    }
}

#[test]
fn seeded_lns_observer_stream_is_deterministic() {
    let run = || {
        let config = lns_config();
        let mut inst = large_acloud_instance(&config, SolverMode::Lns(config.lns_params()));
        let mut log = EventLog::bounded(1 << 16);
        let report = inst.invoke_solver_with_observer(&mut log).unwrap();
        assert_eq!(log.dropped(), 0, "the log must capture every event");
        (normalized(&report), log.drain())
    };
    let (report1, events1) = run();
    let (report2, events2) = run();
    assert_eq!(report1, report2, "reports must be byte-identical");
    assert_eq!(events1, events2, "event sequences must be identical");
    let incumbents = events1
        .iter()
        .filter(|e| matches!(e, SolveEvent::Incumbent { .. }))
        .count();
    assert!(incumbents >= 1, "at least one incumbent must stream out");
    assert!(
        events1
            .iter()
            .any(|e| matches!(e, SolveEvent::LnsIteration { .. })),
        "LNS iterations must be observable"
    );
}

#[test]
fn cancellation_leaves_the_instance_reusable() {
    let config = lns_config();
    let mut inst = large_acloud_instance(&config, SolverMode::Lns(config.lns_params()));

    // Cancel mid-search, right after the first incumbent.
    let mut log = EventLog::bounded(4096).cancel_after_incumbents(1);
    let cancelled = inst.invoke_solver_with_observer(&mut log).unwrap();
    assert!(cancelled.stats.cancelled);
    assert!(!cancelled.proven_optimal);
    assert!(cancelled.feasible, "the first incumbent is kept");
    assert_eq!(inst.pipeline_stats().full_rebuilds, 1);

    // The next invocation is a clean full rebuild: no warm start, no
    // memoized replay, no retained COP — and it completes normally.
    let report = inst.invoke_solver().unwrap();
    let stats = inst.pipeline_stats();
    assert_eq!(
        stats.full_rebuilds, 2,
        "the post-cancellation invocation must be a full rebuild"
    );
    assert!(
        !report.stats.warm_start,
        "a cancelled solve must not seed the warm memory"
    );
    assert!(report.feasible);
    assert!(
        report.stats.nodes > 0,
        "the re-solve must actually search, not replay the cancelled report"
    );
    // and the cancelled run's objective is reachable again (same COP)
    assert!(report.objective.is_some());
}
