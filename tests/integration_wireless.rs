//! Integration test: wireless channel selection end-to-end — centralized and
//! distributed Colog programs, interference model, throughput ordering of the
//! protocols (Fig. 6) and of the policy variations (Fig. 7).

use cologne_usecases::wireless::{
    aggregate_throughput, assignment_for, distributed_assignment_with_stats, interference_count,
    MeshNetwork,
};
use cologne_usecases::{run_fig6, run_fig7, WirelessConfig, WirelessPolicy, WirelessProtocol};

fn test_config() -> WirelessConfig {
    WirelessConfig {
        rows: 3,
        cols: 4,
        flows: 6,
        solver_node_limit: 10_000,
        ..WirelessConfig::default()
    }
}

#[test]
fn all_protocols_produce_complete_assignments() {
    let config = test_config();
    let mesh = MeshNetwork::generate(&config);
    for protocol in WirelessProtocol::all() {
        let assignment = assignment_for(&mesh, protocol);
        assert_eq!(
            assignment.len(),
            mesh.links().len(),
            "{}: every link must get a channel",
            protocol.name()
        );
        for channel in assignment.values() {
            assert!(
                config.channels.contains(channel),
                "{}: channel {channel} out of range",
                protocol.name()
            );
        }
    }
}

#[test]
fn colog_selection_reduces_interference_vs_single_channel() {
    let config = test_config();
    let mesh = MeshNetwork::generate(&config);
    let single = assignment_for(&mesh, WirelessProtocol::OneInterface);
    let distributed = assignment_for(&mesh, WirelessProtocol::Distributed);
    let total = |assignment: &std::collections::BTreeMap<(u32, u32), i64>| -> usize {
        mesh.links()
            .into_iter()
            .map(|l| interference_count(&mesh, assignment, l, config.f_mindiff, 2))
            .sum()
    };
    assert!(
        total(&distributed) < total(&single),
        "distributed selection must reduce total interference ({} vs {})",
        total(&distributed),
        total(&single)
    );
}

#[test]
fn fig6_protocol_ordering_matches_paper_shape() {
    let config = test_config();
    let rates = [2.0, 6.0, 10.0];
    let curves = run_fig6(&config, &rates);
    let peak = |p: WirelessProtocol| curves[&p].peak();
    // Cologne-based protocols beat the single-channel baseline, and the
    // cross-layer protocol is at least as good as plain distributed —
    // the qualitative ordering of Fig. 6.
    assert!(peak(WirelessProtocol::Distributed) >= peak(WirelessProtocol::OneInterface));
    assert!(peak(WirelessProtocol::Centralized) >= peak(WirelessProtocol::OneInterface));
    assert!(peak(WirelessProtocol::CrossLayer) >= peak(WirelessProtocol::Distributed));
    assert!(peak(WirelessProtocol::IdenticalCh) >= peak(WirelessProtocol::OneInterface));
}

#[test]
fn fig7_policy_restrictions_cost_throughput() {
    let config = test_config();
    let rates = [2.0, 6.0, 10.0];
    let curves = run_fig7(&config, &rates);
    let two_hop = curves[&WirelessPolicy::TwoHopInterference].peak();
    let restricted = curves[&WirelessPolicy::RestrictedChannels].peak();
    // Removing channels cannot help (Fig. 7: 35.9% throughput drop).
    assert!(
        restricted <= two_hop + 1e-9,
        "restricted channels ({restricted:.2}) must not beat the full set ({two_hop:.2})"
    );
    for curve in curves.values() {
        assert_eq!(curve.throughput.len(), rates.len());
    }
}

/// Regression for the PR 2 wireless-distributed slowdown: per-use-case
/// branching is now explicit — the per-link negotiation runs input-order
/// while the centralized solver keeps first-fail — and the total search
/// effort of a full negotiation (all passes, all nodes) is pinned under a
/// ceiling, so a future heuristic change that makes the renegotiation
/// fixpoint wander again fails loudly instead of only showing up in the
/// benches. The Fig. 7 restricted-vs-full ordering (already asserted above)
/// is re-checked here on the 3x3 and 4x4 grids the regression was observed
/// on.
#[test]
fn distributed_negotiation_effort_stays_bounded() {
    // Input-order negotiation explores ~340 / ~860 nodes on these grids; the
    // ceilings leave ~6x headroom, far below what a wandering fixpoint costs.
    for (rows, cols, ceiling) in [(3u32, 3u32, 2_000u64), (4, 4, 5_000)] {
        // The full default channel set (the benches' setup), only the grid
        // size varies; `tiny()`'s reduced channel set changes the Fig. 7
        // economics and is not what the regression was observed on.
        let config = WirelessConfig {
            rows,
            cols,
            flows: 8,
            solver_node_limit: 10_000,
            ..WirelessConfig::default()
        };
        let mesh = MeshNetwork::generate(&config);
        let (assignment, stats) = distributed_assignment_with_stats(&mesh, &config.channels);
        assert_eq!(assignment.len(), mesh.links().len());
        assert!(
            stats.nodes < ceiling,
            "{rows}x{cols} negotiation explored {} nodes (ceiling {ceiling})",
            stats.nodes
        );

        let rates = [2.0, 6.0, 10.0];
        let curves = run_fig7(&config, &rates);
        let two_hop = curves[&WirelessPolicy::TwoHopInterference].peak();
        let restricted = curves[&WirelessPolicy::RestrictedChannels].peak();
        assert!(
            restricted <= two_hop + 1e-9,
            "{rows}x{cols}: restricted channels ({restricted:.2}) must not beat the full set ({two_hop:.2})"
        );
    }
}

#[test]
fn throughput_model_is_monotone_in_offered_load() {
    let config = test_config();
    let mesh = MeshNetwork::generate(&config);
    let assignment = assignment_for(&mesh, WirelessProtocol::Distributed);
    let mut last = 0.0;
    for rate in [0.5, 1.0, 2.0, 4.0, 8.0, 16.0] {
        let t = aggregate_throughput(&mesh, &assignment, rate, false);
        assert!(
            t + 1e-9 >= last,
            "throughput decreased when offering more load"
        );
        last = t;
    }
}
