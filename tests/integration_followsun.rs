//! Integration test: distributed Follow-the-Sun execution across the
//! simulated network — localization rewrite, cross-node tuple shipping,
//! per-link COPs, and the Fig. 4 / Fig. 5 metrics.

use cologne_usecases::{run_followsun, run_followsun_sweep, FollowSunConfig};

fn fast_config(n: u32) -> FollowSunConfig {
    FollowSunConfig {
        data_centers: n,
        capacity: 30,
        max_initial_allocation: 6,
        solver_node_limit: 15_000,
        seed: 3,
        ..FollowSunConfig::default()
    }
}

#[test]
fn distributed_execution_never_increases_total_cost() {
    let outcome = run_followsun(&fast_config(4));
    assert_eq!(outcome.cost_series[0].normalized_cost, 100.0);
    for pair in outcome.cost_series.windows(2) {
        assert!(
            pair[1].normalized_cost <= pair[0].normalized_cost + 1e-9,
            "cost increased: {} -> {}",
            pair[0].normalized_cost,
            pair[1].normalized_cost
        );
    }
    assert!(outcome.final_cost <= outcome.initial_cost);
}

#[test]
fn communication_overhead_grows_with_network_size() {
    let results = run_followsun_sweep(&[2, 5], &fast_config(2));
    let small = &results[0].1;
    let large = &results[1].1;
    // more data centers, more links, more negotiation rounds
    assert!(large.convergence_secs >= small.convergence_secs);
    // both executions actually exchanged data over the simulated network
    assert!(small.per_node_overhead_kbps > 0.0);
    assert!(large.per_node_overhead_kbps > 0.0);
}

#[test]
fn migration_limit_policy_composes_with_distribution() {
    let unrestricted = run_followsun(&fast_config(3));
    let restricted = run_followsun(&FollowSunConfig {
        migration_limit: Some(1),
        ..fast_config(3)
    });
    assert!(restricted.migrated_vms <= unrestricted.migrated_vms);
    // the restricted policy still never worsens total cost
    assert!(restricted.final_cost <= restricted.initial_cost);
}

#[test]
fn larger_networks_converge_with_bounded_relative_gain() {
    // Fig. 4's qualitative shape: relative cost reduction tends to shrink as
    // the network grows (distributed solving approximates the global
    // optimum). We only require the reductions to be non-negative and the
    // series to be produced for every size.
    let results = run_followsun_sweep(&[2, 4, 6], &fast_config(2));
    for (n, outcome) in &results {
        assert!(
            outcome.cost_reduction() >= 0.0,
            "{n} DCs: negative reduction"
        );
        assert!(outcome.cost_series.len() >= 2, "{n} DCs: missing series");
    }
}
