//! Integration tests for the LNS solver mode on the large ACloud instance
//! (the acceptance scenario of the incomplete-search subsystem): exact
//! branch-and-bound exhausts its node budget without an optimality proof,
//! while LNS under the *same* budget and a fixed seed returns a feasible
//! assignment at least as good, improves across several destroy/repair
//! iterations, and is bit-for-bit deterministic across runs.

use cologne::SolverMode;
use cologne_usecases::{solve_large_acloud, LargeAcloudConfig};

/// Scaled down from the 120x10 headline scenario only in node budget, so the
/// test stays fast in debug builds; still 100+ VMs as the workload class
/// demands.
fn test_config() -> LargeAcloudConfig {
    LargeAcloudConfig {
        vms: 100,
        hosts: 8,
        node_limit: 8_000,
        seed: 23,
        workers: None,
    }
}

#[test]
fn lns_beats_exact_at_equal_node_budget() {
    let config = test_config();

    let exact = solve_large_acloud(&config, SolverMode::Exact);
    assert!(exact.feasible, "exact finds an incumbent within the budget");
    assert!(
        !exact.proven_optimal,
        "the instance must be too large for the exact node budget"
    );
    assert!(exact.stats.nodes >= config.node_limit, "budget exhausted");

    let lns = solve_large_acloud(&config, SolverMode::Lns(config.lns_params()));
    assert!(lns.feasible, "LNS returns a feasible assignment");
    let (e, l) = (exact.objective.unwrap(), lns.objective.unwrap());
    assert!(
        l <= e,
        "LNS objective ({l}) must be no worse than the exact incumbent ({e})"
    );
    assert!(
        lns.stats.lns_improvements >= 3,
        "LNS must improve monotonically across >= 3 iterations, got {} ({})",
        lns.stats.lns_improvements,
        lns.stats
    );
    assert!(
        lns.stats.lns_iterations >= lns.stats.lns_improvements,
        "iterations include the improving ones"
    );

    // Every hot VM is still placed exactly once — LNS output is a feasible
    // solution of the same COP, not a relaxation.
    let assign = lns.table("assign");
    assert_eq!(assign.len(), config.vms * config.hosts);
    for vid in 0..config.vms as i64 {
        let placements: i64 = assign
            .iter()
            .filter(|r| r[0].as_int() == Some(vid))
            .map(|r| r[2].as_int().unwrap())
            .sum();
        assert_eq!(placements, 1, "VM {vid} must run on exactly one host");
    }
}

#[test]
fn lns_is_deterministic_across_runs() {
    let config = test_config();
    let fingerprint = |report: &cologne::SolveReport| {
        (
            report.objective,
            report.stats.nodes,
            report.stats.fails,
            report.stats.lns_iterations,
            report.stats.lns_improvements,
            report.assignments.clone(),
        )
    };
    let first = solve_large_acloud(&config, SolverMode::Lns(config.lns_params()));
    let second = solve_large_acloud(&config, SolverMode::Lns(config.lns_params()));
    assert_eq!(
        fingerprint(&first),
        fingerprint(&second),
        "same seed, same budget => byte-identical outcome"
    );
}
