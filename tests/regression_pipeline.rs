//! Regression tests for the staged solve pipeline: grounding-plan reuse
//! across repeated `invokeSolver` executions, deterministic repeat solves,
//! and the parallel per-node invocation path producing byte-identical state
//! to the sequential one on the Follow-the-Sun deployment.

use cologne::datalog::{NodeId, Value};
use cologne::{CologneInstance, Deployment, ProgramParams, SolveReport, VarDomain};
use cologne_usecases::{build_followsun_deployment, FollowSunConfig, FollowSunWorkload};

const ACLOUD: &str = r#"
    goal minimize C in hostStdevCpu(C).
    var assign(Vid,Hid,V) forall toAssign(Vid,Hid).
    r1 toAssign(Vid,Hid) <- vm(Vid,Cpu,Mem), host(Hid,Cpu2,Mem2).
    d1 hostCpu(Hid,SUM<C>) <- assign(Vid,Hid,V), vm(Vid,Cpu,Mem), C==V*Cpu.
    d2 hostStdevCpu(STDEV<C>) <- host(Hid,Cpu,Mem), hostCpu(Hid,Cpu2), C==Cpu+Cpu2.
    d3 assignCount(Vid,SUM<V>) <- assign(Vid,Hid,V).
    c1 assignCount(Vid,V) -> V==1.
    d4 hostMem(Hid,SUM<M>) <- assign(Vid,Hid,V), vm(Vid,Cpu,Mem), M==V*Mem.
    c2 hostMem(Hid,Mem) -> hostMemThres(Hid,M), Mem<=M.
"#;

fn acloud_instance() -> CologneInstance {
    let params = ProgramParams::new().with_var_domain("assign", VarDomain::BOOL);
    let mut inst = CologneInstance::new(NodeId(0), ACLOUD, params).unwrap();
    for (vid, cpu, mem) in [(1, 40, 4), (2, 20, 4), (3, 30, 4)] {
        inst.relation("vm")
            .unwrap()
            .insert(vec![Value::Int(vid), Value::Int(cpu), Value::Int(mem)])
            .unwrap();
    }
    for hid in [10, 11] {
        inst.relation("host")
            .unwrap()
            .insert(vec![Value::Int(hid), Value::Int(0), Value::Int(0)])
            .unwrap();
        inst.relation("hostMemThres")
            .unwrap()
            .insert(vec![Value::Int(hid), Value::Int(16)])
            .unwrap();
    }
    inst
}

/// The semantic content of a `SolveReport` must match: outcome flags,
/// objective, materialized tables and shipped tuples. Search statistics are
/// *not* compared here — a warm-started re-solve legitimately explores fewer
/// nodes than a cold one while producing the same result.
fn assert_reports_equivalent(a: &SolveReport, b: &SolveReport, context: &str) {
    assert_eq!(a.feasible, b.feasible, "{context}: feasible");
    assert_eq!(a.trivial, b.trivial, "{context}: trivial");
    assert_eq!(a.objective, b.objective, "{context}: objective");
    assert_eq!(
        a.proven_optimal, b.proven_optimal,
        "{context}: proven_optimal"
    );
    assert_eq!(a.assignments, b.assignments, "{context}: assignments");
    assert_eq!(a.outgoing, b.outgoing, "{context}: outgoing");
}

/// Everything observable of a `SolveReport` must match; only the wall-clock
/// component of the search statistics is exempt (all search *counters* are
/// deterministic and compared).
fn assert_reports_identical(a: &SolveReport, b: &SolveReport, context: &str) {
    assert_reports_equivalent(a, b, context);
    assert_eq!(a.stats.nodes, b.stats.nodes, "{context}: stats.nodes");
    assert_eq!(a.stats.fails, b.stats.fails, "{context}: stats.fails");
    assert_eq!(
        a.stats.propagations, b.stats.propagations,
        "{context}: stats.propagations"
    );
    assert_eq!(
        a.stats.prunings, b.stats.prunings,
        "{context}: stats.prunings"
    );
    assert_eq!(
        a.stats.solutions, b.stats.solutions,
        "{context}: stats.solutions"
    );
    assert_eq!(
        a.stats.max_depth, b.stats.max_depth,
        "{context}: stats.max_depth"
    );
}

#[test]
fn repeated_invocations_reuse_plan_and_repeat_reports() {
    let mut inst = acloud_instance();
    assert_eq!(
        inst.pipeline_stats().plan_builds,
        1,
        "plan built once at construction"
    );

    let first = inst.invoke_solver().unwrap();
    assert!(first.feasible && !first.trivial);
    let second = inst.invoke_solver().unwrap();
    let third = inst.invoke_solver().unwrap();

    // Unchanged inputs: every repeat invocation must reproduce the first
    // report exactly (the second run starts from the materialized tables of
    // the first, which the first run itself produced as a fixpoint). The
    // repeats take the memoized path — the delta-aware grounding proves the
    // COP unchanged, so the first report (including its statistics: the
    // search that produced this result) is replayed without re-solving.
    assert_reports_identical(&first, &second, "second invocation");
    assert_reports_identical(&first, &third, "third invocation");

    // One plan build across three invocations: the cached GroundingPlan was
    // reused, never rebuilt. The first invocation grounds from scratch; the
    // repeats ride the delta-aware path (nothing relevant changed, so the
    // retained COP is reused outright).
    assert_eq!(inst.solver_invocations(), 3);
    let stats = inst.pipeline_stats();
    assert_eq!(
        stats.plan_builds, 1,
        "plan must not be rebuilt between invocations"
    );
    assert_eq!(stats.full_rebuilds, 1, "only the first grounding is cold");
    assert_eq!(
        stats.incremental_builds, 2,
        "both repeats take the delta-aware path"
    );
}

#[test]
fn parameter_changes_rebuild_the_plan_lazily() {
    let mut inst = acloud_instance();
    inst.invoke_solver().unwrap();
    assert_eq!(inst.pipeline_stats().plan_builds, 1);

    // Touching the parameters invalidates the plan; the rebuild happens on
    // the next invocation, not immediately.
    *inst.params_mut() = inst
        .params()
        .clone()
        .with_var_domain("assign", VarDomain::new(0, 1));
    assert_eq!(inst.pipeline_stats().plan_builds, 1, "rebuild is lazy");
    inst.invoke_solver().unwrap();
    assert_eq!(
        inst.pipeline_stats().plan_builds,
        2,
        "invalidated plan rebuilt once"
    );
    inst.invoke_solver().unwrap();
    assert_eq!(
        inst.pipeline_stats().plan_builds,
        2,
        "clean plan reused again"
    );
}

fn deployment_with_negotiations() -> Deployment {
    let config = FollowSunConfig {
        data_centers: 4,
        capacity: 30,
        max_initial_allocation: 6,
        solver_node_limit: 15_000,
        seed: 3,
        ..FollowSunConfig::default()
    };
    let workload = FollowSunWorkload::generate(&config);
    let mut driver = build_followsun_deployment(&config, &workload);
    // Byte-identical comparison requires fully deterministic searches: drop
    // the wall-clock limit so only the (deterministic) node limit binds.
    for node in workload.topology.nodes() {
        driver
            .instance_mut(NodeId(node))
            .unwrap()
            .params_mut()
            .solver_max_time = None;
    }
    // Start one link negotiation at every node (towards its first
    // neighbour), so every per-node COP is non-trivial.
    for node in workload.topology.nodes() {
        let peer = workload.topology.neighbors(node)[0];
        driver
            .insert(
                NodeId(node),
                "setLink",
                vec![Value::Addr(NodeId(node)), Value::Addr(NodeId(peer))],
            )
            .unwrap();
    }
    driver.run_messages_until(cologne::net::SimTime::from_secs(2));
    driver
}

#[test]
fn parallel_solver_invocation_matches_sequential_byte_for_byte() {
    // Two identical deployments of the Follow-the-Sun program; one invokes
    // the per-node solvers sequentially, the other concurrently.
    let mut sequential = deployment_with_negotiations();
    let mut parallel = deployment_with_negotiations();

    let seq_reports = sequential.invoke().expect("sequential invocation succeeds");
    let par_reports = parallel
        .invoke_parallel()
        .expect("parallel invocation succeeds");

    assert_eq!(seq_reports.len(), 4);
    assert_eq!(
        seq_reports.keys().collect::<Vec<_>>(),
        par_reports.keys().collect::<Vec<_>>(),
        "same set of nodes"
    );
    let mut solved = 0;
    for (node, seq) in &seq_reports {
        let par = &par_reports[node];
        assert_reports_identical(seq, par, &format!("node {node:?}"));
        if seq.feasible && !seq.trivial {
            solved += 1;
        }
    }
    assert!(solved > 0, "at least one node must have solved a real COP");

    // Every table on every node must be byte-identical, including the
    // materialized solver outputs and anything derived from them.
    for node in sequential.nodes() {
        let s = sequential.instance(node).unwrap();
        let p = parallel.instance(node).unwrap();
        assert_eq!(
            s.relation_names(),
            p.relation_names(),
            "node {node:?}: relation sets"
        );
        for rel in s.relation_names() {
            let mut st: Vec<_> = s.scan(rel).cloned().collect();
            let mut pt: Vec<_> = p.scan(rel).cloned().collect();
            st.sort();
            pt.sort();
            assert_eq!(st, pt, "node {node:?}: relation {rel} diverged");
        }
    }

    // The deterministic network also stayed in lockstep: same virtual time,
    // same per-node traffic counters.
    assert_eq!(sequential.now(), parallel.now());
    for node in sequential.nodes() {
        let st = sequential.traffic(node);
        let pt = parallel.traffic(node);
        assert_eq!(st.bytes_sent, pt.bytes_sent, "node {node:?}: bytes_sent");
        assert_eq!(
            st.bytes_received, pt.bytes_received,
            "node {node:?}: bytes_received"
        );
    }
}

#[test]
fn parallel_invocation_ships_solver_outputs_once() {
    let mut driver = deployment_with_negotiations();
    let reports = driver.invoke_parallel().expect("invocation succeeds");
    // Outgoing tuples are drained into the network by the call itself.
    for report in reports.values() {
        assert!(
            report.outgoing.is_empty(),
            "outgoing must be drained after shipping"
        );
    }
    // Delivering the shipped migVm results must not panic and advances time.
    driver.run_messages_until(cologne::net::SimTime::from_secs(10));
}
