//! Determinism tests for the distributed layer: the combination of
//! per-node solving on scoped threads (`invoke_solvers_parallel`), the
//! discrete-event simulator, and — new in this PR — the LNS solver mode must
//! be a pure function of (program, workload seed, solver seed). Two
//! independent runs are compared fingerprint-for-fingerprint: per-node
//! traffic counters, solver outcomes and materialized tables.

use std::collections::BTreeMap;

use cologne::datalog::{NodeId, Value};
use cologne::net::{NodeTraffic, SimTime, Topology};
use cologne::{
    CologneInstance, DeploymentBuilder, DistributedCologne, LnsParams, ProgramParams,
    SolverBranching, SolverMode, VarDomain,
};
use cologne_usecases::programs::ACLOUD_CENTRALIZED;
use cologne_usecases::{build_followsun_deployment, FollowSunConfig, FollowSunWorkload};

/// Everything observable about one distributed execution.
type Fingerprint = BTreeMap<
    u32,
    (
        NodeTraffic,
        Option<i64>,                    // objective
        bool,                           // feasible
        (u64, u64, u64, u64),           // nodes, fails, lns iterations, lns improvements
        Vec<(String, Vec<Vec<Value>>)>, // materialized solver tables
    ),
>;

fn fingerprint(
    driver: &DistributedCologne,
    reports: &BTreeMap<NodeId, cologne::SolveReport>,
) -> Fingerprint {
    reports
        .iter()
        .map(|(node, report)| {
            (
                node.0,
                (
                    driver.traffic(*node),
                    report.objective,
                    report.feasible,
                    (
                        report.stats.nodes,
                        report.stats.fails,
                        report.stats.lns_iterations,
                        report.stats.lns_improvements,
                    ),
                    report
                        .assignments
                        .iter()
                        .map(|(name, rows)| (name.clone(), rows.clone()))
                        .collect(),
                ),
            )
        })
        .collect()
}

/// One Follow-the-Sun execution: every link negotiation armed at once, all
/// local COPs solved in parallel, solver outputs shipped through the
/// simulated network and delivered.
fn run_followsun_parallel(config: &FollowSunConfig) -> Fingerprint {
    let workload = FollowSunWorkload::generate(config);
    let mut driver = build_followsun_deployment(config, &workload);
    // Byte-identity holds under *deterministic* limits; the deployment's
    // default 10 s wall clock is schedule-dependent (and actually trips in
    // debug builds), so the node budget alone must bound these searches.
    for node in driver.nodes() {
        driver
            .instance_mut(node)
            .unwrap()
            .params_mut()
            .solver_max_time = None;
    }
    for (a, b) in workload.topology.links() {
        let initiator = a.max(b);
        let peer = a.min(b);
        driver
            .insert(
                NodeId(initiator),
                "setLink",
                vec![Value::Addr(NodeId(initiator)), Value::Addr(NodeId(peer))],
            )
            .unwrap();
    }
    driver.run_messages_until(SimTime::from_secs(60));
    let reports = driver
        .invoke_solvers_parallel()
        .expect("per-node COPs solve");
    driver.run_messages_until(SimTime::from_secs(120));
    fingerprint(&driver, &reports)
}

#[test]
fn parallel_followsun_execution_is_deterministic() {
    let config = FollowSunConfig {
        data_centers: 4,
        solver_node_limit: 5_000,
        ..Default::default()
    };
    let first = run_followsun_parallel(&config);
    let second = run_followsun_parallel(&config);
    assert!(
        first.values().any(|(_, objective, ..)| objective.is_some()),
        "at least one node must solve a non-trivial COP"
    );
    assert!(
        first.values().any(|(t, ..)| t.bytes_sent > 0),
        "negotiations must produce network traffic"
    );
    assert_eq!(first, second, "same seed => byte-identical execution");
}

/// A two-node deployment whose per-node ACloud COPs run in LNS mode.
fn run_lns_deployment(lns_seed: u64) -> Fingerprint {
    let params = ProgramParams::new()
        .with_var_domain("assign", VarDomain::BOOL)
        .with_solver_branching(SolverBranching::FirstFail)
        .with_solver_node_limit(Some(2_000))
        .with_solver_max_time(None)
        .with_solver_mode(SolverMode::Lns(LnsParams {
            seed: lns_seed,
            dive_node_limit: 200,
            repair_fail_base: 16,
            ..Default::default()
        }));
    let topology = Topology::line(2, DistributedCologne::default_link());
    let mut driver = DeploymentBuilder::new(ACLOUD_CENTRALIZED)
        .params(params)
        .topology(topology)
        .build()
        .unwrap();
    for node in [NodeId(0), NodeId(1)] {
        let inst: &mut CologneInstance = driver.instance_mut(node).unwrap();
        // Distinct workloads per node so the two COPs differ.
        for vid in 0..12i64 {
            let cpu = 10 + 7 * ((vid + node.0 as i64 * 5) % 8);
            inst.relation("vm")
                .unwrap()
                .insert(vec![Value::Int(vid), Value::Int(cpu), Value::Int(1)])
                .unwrap();
        }
        for hid in 0..4i64 {
            inst.relation("host")
                .unwrap()
                .insert(vec![
                    Value::Int(hid),
                    Value::Int(5 * hid * (node.0 as i64 + 1)),
                    Value::Int(0),
                ])
                .unwrap();
            inst.relation("hostMemThres")
                .unwrap()
                .insert(vec![Value::Int(hid), Value::Int(8)])
                .unwrap();
        }
    }
    let reports = driver
        .invoke_solvers_parallel()
        .expect("per-node LNS COPs solve");
    fingerprint(&driver, &reports)
}

#[test]
fn parallel_lns_execution_is_deterministic() {
    let first = run_lns_deployment(77);
    let second = run_lns_deployment(77);
    assert!(
        first
            .values()
            .any(|(_, _, _, (_, _, iters, _), _)| *iters > 0),
        "LNS iterations must actually run"
    );
    assert_eq!(first, second, "same LNS seed => byte-identical reports");
    // A different seed is allowed to explore differently — but must stay
    // feasible and still produce an assignment for every VM.
    let other = run_lns_deployment(78);
    for (_, _, feasible, _, tables) in other.values() {
        assert!(feasible);
        assert!(tables
            .iter()
            .any(|(name, rows)| name == "assign" && !rows.is_empty()));
    }
}
