//! Determinism tests for the distributed layer: the combination of
//! per-node solving on scoped threads (`invoke_solvers_parallel`), the
//! discrete-event simulator, and — new in this PR — the LNS solver mode must
//! be a pure function of (program, workload seed, solver seed). Two
//! independent runs are compared fingerprint-for-fingerprint: per-node
//! traffic counters, solver outcomes and materialized tables.

use std::collections::BTreeMap;

use cologne::datalog::{NodeId, RemoteTuple, Value};
use cologne::net::{FaultPlan, LinkFaults, NodeTraffic, SimTime, Topology};
use cologne::{
    CologneInstance, DeploymentBuilder, DistributedCologne, LnsParams, ProgramParams,
    SolverBranching, SolverMode, VarDomain,
};
use cologne_usecases::programs::ACLOUD_CENTRALIZED;
use cologne_usecases::{build_followsun_deployment, FollowSunConfig, FollowSunWorkload};
use proptest::prelude::*;

/// Everything observable about one distributed execution.
type Fingerprint = BTreeMap<
    u32,
    (
        NodeTraffic,
        Option<i64>,                    // objective
        bool,                           // feasible
        (u64, u64, u64, u64),           // nodes, fails, lns iterations, lns improvements
        Vec<(String, Vec<Vec<Value>>)>, // materialized solver tables
    ),
>;

fn fingerprint(
    driver: &DistributedCologne,
    reports: &BTreeMap<NodeId, cologne::SolveReport>,
) -> Fingerprint {
    reports
        .iter()
        .map(|(node, report)| {
            (
                node.0,
                (
                    driver.traffic(*node),
                    report.objective,
                    report.feasible,
                    (
                        report.stats.nodes,
                        report.stats.fails,
                        report.stats.lns_iterations,
                        report.stats.lns_improvements,
                    ),
                    report
                        .assignments
                        .iter()
                        .map(|(name, rows)| (name.clone(), rows.clone()))
                        .collect(),
                ),
            )
        })
        .collect()
}

/// One Follow-the-Sun execution: every link negotiation armed at once, all
/// local COPs solved in parallel, solver outputs shipped through the
/// simulated network and delivered.
fn run_followsun_parallel(config: &FollowSunConfig) -> Fingerprint {
    let workload = FollowSunWorkload::generate(config);
    let mut driver = build_followsun_deployment(config, &workload);
    // Byte-identity holds under *deterministic* limits; the deployment's
    // default 10 s wall clock is schedule-dependent (and actually trips in
    // debug builds), so the node budget alone must bound these searches.
    for node in driver.nodes() {
        driver
            .instance_mut(node)
            .unwrap()
            .params_mut()
            .solver_max_time = None;
    }
    for (a, b) in workload.topology.links() {
        let initiator = a.max(b);
        let peer = a.min(b);
        driver
            .insert(
                NodeId(initiator),
                "setLink",
                vec![Value::Addr(NodeId(initiator)), Value::Addr(NodeId(peer))],
            )
            .unwrap();
    }
    driver.run_messages_until(SimTime::from_secs(60));
    let reports = driver.invoke_parallel().expect("per-node COPs solve");
    driver.run_messages_until(SimTime::from_secs(120));
    fingerprint(driver.network(), &reports)
}

#[test]
fn parallel_followsun_execution_is_deterministic() {
    let config = FollowSunConfig {
        data_centers: 4,
        solver_node_limit: 5_000,
        ..Default::default()
    };
    let first = run_followsun_parallel(&config);
    let second = run_followsun_parallel(&config);
    assert!(
        first.values().any(|(_, objective, ..)| objective.is_some()),
        "at least one node must solve a non-trivial COP"
    );
    assert!(
        first.values().any(|(t, ..)| t.bytes_sent > 0),
        "negotiations must produce network traffic"
    );
    assert_eq!(first, second, "same seed => byte-identical execution");
}

/// Ping relay used by the fault-plan property below: one rule so the
/// deployment compiles, traffic driven by hand-shipped tuples.
const PING: &str = r#"
    r1 pong(@Y,X) <- ping(@X,Y).
"#;

/// One hostile execution of a hand-driven three-node deployment: `n`
/// distinct pings shipped from node 0 to node 2 through the at-least-once
/// delivery layer while the fault plan injects loss, duplication, reorder
/// and (possibly) a crash of a node. Returns everything observable.
#[allow(clippy::type_complexity)]
fn run_hostile_pings(
    plan: &FaultPlan,
    n: i64,
) -> (
    bool,
    cologne::DeliveryStats,
    Vec<NodeTraffic>,
    Vec<Vec<Value>>,
    Vec<cologne::CrashEvent>,
) {
    let mut driver = DeploymentBuilder::new(PING)
        .topology(Topology::full_mesh(3, DistributedCologne::default_link()))
        .faults(plan.clone())
        .build()
        .unwrap();
    for i in 0..n {
        driver.ship(
            NodeId(0),
            vec![RemoteTuple {
                dest: NodeId(2),
                relation: "ping".into(),
                tuple: vec![Value::Addr(NodeId(0)), Value::Int(i)],
                insert: true,
            }],
        );
    }
    let settled = driver.settle(SimTime::from_secs(600));
    let mut pings: Vec<Vec<Value>> = driver
        .instance(NodeId(2))
        .unwrap()
        .scan("ping")
        .cloned()
        .collect();
    pings.sort();
    let traffic = driver
        .nodes()
        .into_iter()
        .map(|node| driver.traffic(node))
        .collect();
    let stats = driver.delivery_stats();
    let log = driver.take_crash_log();
    (settled, stats, traffic, pings, log)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Under *any* seeded fault plan — random loss, duplication, reorder
    /// jitter, and an optional crash/rejoin of a node on the path — the
    /// at-least-once delivery layer (a) reconverges to the full fault-free
    /// assertion set and (b) replays byte-identically under the same seed.
    #[test]
    fn random_fault_plans_replay_and_reconverge(
        seed in 1u64..u64::MAX,
        loss in 0.0f64..0.5,
        duplicate in 0.0f64..0.5,
        jitter_us in 0u64..50_000,
        // crash_node 0 means "no crash"; 1 or 2 crashes that node
        crash_node in 0u32..3,
        down in 1u64..4,
        outage in 1u64..6,
        n in 5i64..20,
    ) {
        let mut plan = FaultPlan::seeded(seed).link_faults(LinkFaults {
            loss,
            duplicate,
            jitter_us,
        });
        if crash_node > 0 {
            plan = plan.crash(
                crash_node,
                SimTime::from_secs(down),
                SimTime::from_secs(down + outage),
            );
        }
        let first = run_hostile_pings(&plan, n);
        let second = run_hostile_pings(&plan, n);
        prop_assert_eq!(&first, &second);
        let (settled, _, _, pings, log) = first;
        prop_assert!(settled, "the network must quiesce after the fault horizon");
        let expected: Vec<Vec<Value>> = (0..n)
            .map(|i| vec![Value::Addr(NodeId(0)), Value::Int(i)])
            .collect();
        prop_assert_eq!(pings, expected);
        prop_assert_eq!(log.len(), if crash_node > 0 { 2 } else { 0 });
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// `invoke_solvers_parallel` composed with hostile delivery stays a pure
    /// function of (workload, fault seed): the whole Follow-the-Sun parallel
    /// negotiation — base-fact shipping through loss/duplication/reorder, an
    /// optional crash/rejoin resync, scoped-thread solving, solver-output
    /// delivery — must replay identical traffic, outcomes and tables.
    #[test]
    fn hostile_parallel_solves_are_deterministic(
        seed in 1u64..u64::MAX,
        loss in 0.0f64..0.3,
        duplicate in 0.0f64..0.3,
        jitter_us in 0u64..30_000,
        crash_node in 0u32..3,
    ) {
        let mut plan = FaultPlan::seeded(seed).link_faults(LinkFaults {
            loss,
            duplicate,
            jitter_us,
        });
        if crash_node > 0 {
            plan = plan.crash(crash_node, SimTime::from_secs(2), SimTime::from_secs(6));
        }
        let config = FollowSunConfig {
            data_centers: 3,
            solver_node_limit: 2_000,
            fault_plan: Some(plan),
            ..Default::default()
        };
        let first = run_followsun_parallel(&config);
        let second = run_followsun_parallel(&config);
        prop_assert_eq!(&first, &second);
        prop_assert!(
            first.values().any(|(t, ..)| t.bytes_sent > 0),
            "negotiations must produce network traffic"
        );
    }
}

/// A two-node deployment whose per-node ACloud COPs run in LNS mode.
fn run_lns_deployment(lns_seed: u64) -> Fingerprint {
    let params = ProgramParams::new()
        .with_var_domain("assign", VarDomain::BOOL)
        .with_solver_branching(SolverBranching::FirstFail)
        .with_solver_node_limit(Some(2_000))
        .with_solver_max_time(None)
        .with_solver_mode(SolverMode::Lns(LnsParams {
            seed: lns_seed,
            dive_node_limit: 200,
            repair_fail_base: 16,
            ..Default::default()
        }));
    let topology = Topology::line(2, DistributedCologne::default_link());
    let mut driver = DeploymentBuilder::new(ACLOUD_CENTRALIZED)
        .params(params)
        .topology(topology)
        .build()
        .unwrap();
    for node in [NodeId(0), NodeId(1)] {
        let inst: &mut CologneInstance = driver.instance_mut(node).unwrap();
        // Distinct workloads per node so the two COPs differ.
        for vid in 0..12i64 {
            let cpu = 10 + 7 * ((vid + node.0 as i64 * 5) % 8);
            inst.relation("vm")
                .unwrap()
                .insert(vec![Value::Int(vid), Value::Int(cpu), Value::Int(1)])
                .unwrap();
        }
        for hid in 0..4i64 {
            inst.relation("host")
                .unwrap()
                .insert(vec![
                    Value::Int(hid),
                    Value::Int(5 * hid * (node.0 as i64 + 1)),
                    Value::Int(0),
                ])
                .unwrap();
            inst.relation("hostMemThres")
                .unwrap()
                .insert(vec![Value::Int(hid), Value::Int(8)])
                .unwrap();
        }
    }
    let reports = driver.invoke_parallel().expect("per-node LNS COPs solve");
    fingerprint(driver.network(), &reports)
}

#[test]
fn parallel_lns_execution_is_deterministic() {
    let first = run_lns_deployment(77);
    let second = run_lns_deployment(77);
    assert!(
        first
            .values()
            .any(|(_, _, _, (_, _, iters, _), _)| *iters > 0),
        "LNS iterations must actually run"
    );
    assert_eq!(first, second, "same LNS seed => byte-identical reports");
    // A different seed is allowed to explore differently — but must stay
    // feasible and still produce an assignment for every VM.
    let other = run_lns_deployment(78);
    for (_, _, feasible, _, tables) in other.values() {
        assert!(feasible);
        assert!(tables
            .iter()
            .any(|(name, rows)| name == "assign" && !rows.is_empty()));
    }
}
