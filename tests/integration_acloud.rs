//! Integration test: the ACloud pipeline end-to-end — Colog source → parser →
//! analysis → runtime grounding → branch-and-bound → materialized placement →
//! experiment metrics — spanning `cologne-colog`, `cologne-datalog`,
//! `cologne-solver`, `cologne-core` and `cologne-usecases`.

use cologne::datalog::{NodeId, Value};
use cologne::{CologneInstance, ProgramParams, VarDomain};
use cologne_usecases::programs::{acloud_with_migration_limit, ACLOUD_CENTRALIZED};
use cologne_usecases::{run_acloud_experiment, AcloudConfig, AcloudPolicy};

fn instance_with(source: &str, params: ProgramParams) -> CologneInstance {
    CologneInstance::new(NodeId(0), source, params).expect("program compiles")
}

fn feed_snapshot(inst: &mut CologneInstance, vms: &[(i64, i64, i64)], hosts: &[i64], mem: i64) {
    let mut vm = inst.relation("vm").unwrap();
    for &(vid, cpu, m) in vms {
        vm.insert(vec![Value::Int(vid), Value::Int(cpu), Value::Int(m)])
            .unwrap();
    }
    for &hid in hosts {
        inst.relation("host")
            .unwrap()
            .insert(vec![Value::Int(hid), Value::Int(0), Value::Int(0)])
            .unwrap();
        inst.relation("hostMemThres")
            .unwrap()
            .insert(vec![Value::Int(hid), Value::Int(mem)])
            .unwrap();
    }
}

#[test]
fn acloud_end_to_end_balances_and_respects_memory() {
    let params = ProgramParams::new().with_var_domain("assign", VarDomain::BOOL);
    let mut inst = instance_with(ACLOUD_CENTRALIZED, params);
    let vms = [(1, 60, 2), (2, 50, 2), (3, 40, 2), (4, 30, 2)];
    feed_snapshot(&mut inst, &vms, &[10, 11], 4);
    let report = inst.invoke_solver().expect("solve succeeds");
    assert!(report.feasible);

    // each VM exactly once, each host at most 2 VMs (4 GB / 2 GB)
    let assign = report.table("assign");
    let mut per_host_mem = std::collections::BTreeMap::new();
    let mut per_host_cpu = std::collections::BTreeMap::new();
    for row in assign {
        if row[2].as_int() == Some(1) {
            let hid = row[1].as_int().unwrap();
            *per_host_mem.entry(hid).or_insert(0) += 2;
            let vid = row[0].as_int().unwrap();
            let cpu = vms.iter().find(|(v, _, _)| *v == vid).unwrap().1;
            *per_host_cpu.entry(hid).or_insert(0) += cpu;
        }
    }
    for (&hid, &mem) in &per_host_mem {
        assert!(mem <= 4, "host {hid} exceeds memory: {mem}");
    }
    // balanced optimum: 90 / 90 CPU
    let loads: Vec<i64> = per_host_cpu.values().copied().collect();
    assert_eq!(loads.iter().sum::<i64>(), 180);
    assert_eq!(loads[0], 90, "optimal split is 90/90, got {loads:?}");
}

#[test]
fn acloud_migration_limit_enforced_end_to_end() {
    let params = ProgramParams::new()
        .with_var_domain("assign", VarDomain::BOOL)
        .with_constant("max_migrates", 1);
    let mut inst = instance_with(&acloud_with_migration_limit(), params);
    let vms = [(1, 60, 1), (2, 50, 1), (3, 40, 1), (4, 30, 1)];
    feed_snapshot(&mut inst, &vms, &[10, 11], 16);
    // everything currently on host 10
    for &(vid, _, _) in &vms {
        inst.relation("origin")
            .unwrap()
            .insert(vec![Value::Int(vid), Value::Int(10)])
            .unwrap();
    }
    let report = inst.invoke_solver().expect("solve succeeds");
    assert!(report.feasible);
    let moved = report
        .table("assign")
        .iter()
        .filter(|row| row[2].as_int() == Some(1) && row[1].as_int() != Some(10))
        .count();
    assert!(moved <= 1, "migration limit violated: {moved} moves");
}

#[test]
fn acloud_reoptimizes_incrementally_as_load_changes() {
    let params = ProgramParams::new().with_var_domain("assign", VarDomain::BOOL);
    let mut inst = instance_with(ACLOUD_CENTRALIZED, params);
    feed_snapshot(&mut inst, &[(1, 80, 1), (2, 20, 1)], &[10, 11], 8);
    let first = inst.invoke_solver().expect("first solve");
    assert!(first.feasible);
    // VM 2's load spikes; the monitoring layer refreshes the vm table
    inst.relation("vm")
        .unwrap()
        .set(vec![
            vec![Value::Int(1), Value::Int(80), Value::Int(1)],
            vec![Value::Int(2), Value::Int(85), Value::Int(1)],
            vec![Value::Int(3), Value::Int(75), Value::Int(1)],
        ])
        .unwrap();
    let second = inst.invoke_solver().expect("second solve");
    assert!(second.feasible);
    assert_eq!(second.table("assign").len(), 6); // 3 VMs x 2 hosts now
                                                 // the two heavy VMs must not share a host with each other and VM3
    let mut hosts_used = std::collections::BTreeSet::new();
    for row in second.table("assign") {
        if row[2].as_int() == Some(1) {
            hosts_used.insert(row[1].as_int().unwrap());
        }
    }
    assert_eq!(
        hosts_used.len(),
        2,
        "both hosts should be used after the spike"
    );
}

#[test]
fn full_experiment_beats_or_matches_default_policy() {
    let config = AcloudConfig {
        duration_hours: 0.5,
        ..AcloudConfig::tiny()
    };
    let results = run_acloud_experiment(&config);
    assert_eq!(results.intervals.len(), config.intervals());
    let acloud = results.mean_stdev(AcloudPolicy::ACloud);
    let default = results.mean_stdev(AcloudPolicy::Default);
    assert!(acloud <= default + 1e-9);
    // ACloud(M) obeys the per-DC migration cap in every interval
    for interval in &results.intervals {
        assert!(
            interval.migrations[&AcloudPolicy::ACloudM]
                <= (config.max_migrations_per_dc as u64) * config.data_centers as u64,
            "ACloud (M) exceeded its migration budget"
        );
    }
}
